// Observability subsystem: metrics registry semantics under concurrency,
// histogram edge conventions, Chrome-trace span collection, the
// GFI_TRACE/GFI_METRICS environment switches, and the campaign-level
// determinism contract — telemetry off leaves every output byte-identical,
// telemetry on produces counter totals that are invariant across worker
// widths and reproducible from a journal resume.

#include "core/campaign.hpp"
#include "core/cost.hpp"
#include "core/journal.hpp"
#include "core/report.hpp"
#include "duts/digital_dut.hpp"
#include "obs/bench_compare.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "snapshot/snapshot.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

namespace gfi {
namespace {

// ---------------------------------------------------------------------------
// Helpers

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Structural JSON check: braces/brackets balance outside string literals and
/// the text is one complete value. Catches the classic emitter bugs (trailing
/// comma-free truncation, unescaped quotes) without a JSON parser dependency.
bool balancedJson(const std::string& text)
{
    int depth = 0;
    bool inString = false;
    bool sawValue = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (inString) {
            if (c == '\\') {
                ++i; // skip the escaped character
            } else if (c == '"') {
                inString = false;
            }
            continue;
        }
        if (c == '"') {
            inString = true;
        } else if (c == '{' || c == '[') {
            ++depth;
            sawValue = true;
        } else if (c == '}' || c == ']') {
            if (--depth < 0) {
                return false;
            }
        }
    }
    return depth == 0 && !inString && sawValue;
}

std::size_t countOccurrences(const std::string& haystack, const std::string& needle)
{
    std::size_t n = 0;
    for (std::size_t at = haystack.find(needle); at != std::string::npos;
         at = haystack.find(needle, at + needle.size())) {
        ++n;
    }
    return n;
}

/// Exhaustive bit-flip list over the digital DUT's stored state (the same
/// enumeration the examples use), sized so an 8-worker campaign keeps every
/// worker busy.
std::vector<fault::FaultSpec> digitalDutFaults()
{
    const duts::DigitalDutTestbench probe;
    const std::vector<SimTime> times{kMicrosecond + 7 * kNanosecond,
                                     3 * kMicrosecond + 3 * kNanosecond};
    std::vector<fault::FaultSpec> faults;
    for (const auto& [name, hook] : probe.sim().digital().instrumentation().all()) {
        for (int bit = 0; bit < hook.width; ++bit) {
            for (SimTime t : times) {
                faults.emplace_back(fault::BitFlipFault{name, bit, t});
            }
        }
    }
    return faults;
}

fault::TestbenchFactory dutFactory()
{
    return [] { return std::make_unique<duts::DigitalDutTestbench>(); };
}

void configureDutRunner(campaign::CampaignRunner& runner, unsigned workers)
{
    runner.setWorkers(workers);
    runner.setRecordTiming(false);
}

struct ScopedUnsetEnv {
    ~ScopedUnsetEnv()
    {
        ::unsetenv("GFI_TRACE");
        ::unsetenv("GFI_METRICS");
    }
};

/// Campaign-level tests assert exact byte/count identity, so the ambient
/// environment must not sneak a sink, a fork cadence or a forensics dump
/// directory into the runner.
void clearTelemetryEnv()
{
    ::unsetenv("GFI_TRACE");
    ::unsetenv("GFI_METRICS");
    ::unsetenv("GFI_CHECKPOINT");
    ::unsetenv("GFI_FORENSICS");
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(ObsMetrics, CounterGaugeBasics)
{
    obs::MetricsRegistry m;
    obs::Counter& c = m.counter("gfi_test_total", "help text");
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(m.counterValue("gfi_test_total"), 5u);
    EXPECT_EQ(m.counterValue("absent"), 0u);
    EXPECT_TRUE(m.has("gfi_test_total"));
    EXPECT_FALSE(m.has("absent"));
    EXPECT_EQ(&m.counter("gfi_test_total"), &c) << "registration must be idempotent";

    obs::Gauge& g = m.gauge("gfi_test_level");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.foldMax(1.0);
    EXPECT_DOUBLE_EQ(g.value(), 2.5) << "foldMax must keep the larger value";
    g.foldMax(7.0);
    EXPECT_DOUBLE_EQ(g.value(), 7.0);

    obs::Gauge& mn = m.gauge("gfi_test_min");
    mn.foldMinNonzero(0.0);
    EXPECT_DOUBLE_EQ(mn.value(), 0.0) << "zero must not count as a minimum";
    mn.foldMinNonzero(3.0);
    mn.foldMinNonzero(5.0);
    EXPECT_DOUBLE_EQ(mn.value(), 3.0);
    mn.foldMinNonzero(1.0);
    EXPECT_DOUBLE_EQ(mn.value(), 1.0);

    // One name, one kind: re-registering as another kind is a logic error.
    EXPECT_THROW(m.gauge("gfi_test_total"), std::logic_error);
    EXPECT_THROW(m.histogram("gfi_test_level", {1.0}), std::logic_error);
}

TEST(ObsMetrics, RegistryConcurrency)
{
    obs::MetricsRegistry m;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kIncrements = 20000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&m, t] {
            // Shared counter, per-thread labeled counter, shared histogram and
            // max-folded gauge — all hammered concurrently, registration
            // included (every thread calls the lookup on each iteration).
            const std::string mine =
                "gfi_thread_total{tid=\"" + std::to_string(t) + "\"}";
            for (std::uint64_t i = 0; i < kIncrements; ++i) {
                m.counter("gfi_shared_total").inc();
                m.counter(mine).inc();
                m.histogram("gfi_shared_hist", {10.0, 100.0}).observe(1.0);
                m.gauge("gfi_shared_max").foldMax(static_cast<double>(t));
            }
        });
    }
    for (std::thread& th : threads) {
        th.join();
    }

    EXPECT_EQ(m.counterValue("gfi_shared_total"), kThreads * kIncrements);
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(m.counterValue("gfi_thread_total{tid=\"" + std::to_string(t) + "\"}"),
                  kIncrements);
    }
    const obs::Histogram& h = m.histogram("gfi_shared_hist", {10.0, 100.0});
    EXPECT_EQ(h.count(), kThreads * kIncrements);
    EXPECT_EQ(h.bucketCount(0), kThreads * kIncrements);
    EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kIncrements));
    EXPECT_DOUBLE_EQ(m.gauge("gfi_shared_max").value(), kThreads - 1.0);
}

TEST(ObsMetrics, HistogramBucketEdges)
{
    obs::Histogram h({10.0, 100.0, 1000.0});

    h.observe(10.0);     // exactly on a bound: counts in that bucket (le)
    h.observe(10.0001);  // just past it: next bucket
    h.observe(100.0);    // on the second bound
    h.observe(1000.0);   // on the last bound
    h.observe(1000.5);   // past every bound: overflow/+Inf bucket
    h.observe(-3.0);     // below everything: first bucket

    EXPECT_EQ(h.bucketCount(0), 2u) << "<= 10";
    EXPECT_EQ(h.bucketCount(1), 2u) << "(10, 100]";
    EXPECT_EQ(h.bucketCount(2), 1u) << "(100, 1000]";
    EXPECT_EQ(h.bucketCount(3), 1u) << "overflow";
    EXPECT_EQ(h.count(), 6u);
    EXPECT_NEAR(h.sum(), 10.0 + 10.0001 + 100.0 + 1000.0 + 1000.5 - 3.0, 1e-9);

    EXPECT_THROW(obs::Histogram({5.0, 1.0}), std::invalid_argument);
}

TEST(ObsMetrics, PrometheusTextExposition)
{
    obs::MetricsRegistry m;
    m.counter("gfi_runs_total{outcome=\"silent\"}", "Completed runs").inc(3);
    m.counter("gfi_runs_total{outcome=\"failure\"}", "Completed runs").inc(1);
    m.gauge("gfi_workers", "Worker threads").set(4);
    obs::Histogram& h = m.histogram("gfi_waves", {10.0, 100.0}, "Waves per run");
    h.observe(5.0);
    h.observe(50.0);
    h.observe(500.0);

    const std::string text = m.prometheusText();

    // TYPE/HELP once per base name, even with two labeled series.
    EXPECT_EQ(countOccurrences(text, "# TYPE gfi_runs_total counter"), 1u) << text;
    EXPECT_EQ(countOccurrences(text, "# HELP gfi_runs_total Completed runs"), 1u);
    EXPECT_NE(text.find("gfi_runs_total{outcome=\"silent\"} 3\n"), std::string::npos);
    EXPECT_NE(text.find("gfi_runs_total{outcome=\"failure\"} 1\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE gfi_workers gauge"), std::string::npos);
    EXPECT_NE(text.find("gfi_workers 4\n"), std::string::npos);

    // Histogram buckets are cumulative and close with +Inf/sum/count.
    EXPECT_NE(text.find("# TYPE gfi_waves histogram"), std::string::npos);
    EXPECT_NE(text.find("gfi_waves_bucket{le=\"10\"} 1\n"), std::string::npos);
    EXPECT_NE(text.find("gfi_waves_bucket{le=\"100\"} 2\n"), std::string::npos);
    EXPECT_NE(text.find("gfi_waves_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
    EXPECT_NE(text.find("gfi_waves_sum 555\n"), std::string::npos);
    EXPECT_NE(text.find("gfi_waves_count 3\n"), std::string::npos);

    // Exposition is deterministic: same registry, same bytes.
    EXPECT_EQ(text, m.prometheusText());
    EXPECT_TRUE(balancedJson(m.json())) << m.json();
    // Labeled names embed quotes; the JSON exposition must escape them when
    // the name becomes an object key.
    EXPECT_NE(m.json().find("\"gfi_runs_total{outcome=\\\"silent\\\"}\": 3"),
              std::string::npos)
        << m.json();
}

// ---------------------------------------------------------------------------
// Trace writer / spans

TEST(ObsTrace, SpanNestingAndJsonShape)
{
    obs::Telemetry telemetry;
    telemetry.enableTracing();
    ASSERT_NE(telemetry.trace(), nullptr);

    telemetry.trace()->nameCurrentTrack("main");
    telemetry.trace()->nameCurrentTrack("main"); // deduplicated
    {
        obs::Span outer(&telemetry, "outer", "test");
        {
            obs::Span inner(&telemetry, "inner", "test");
            inner.setArgs("{\"k\": 1}");
        }
        telemetry.trace()->instantEvent("marker", "test");
    }
    // 1 metadata + 2 spans + 1 instant; the second nameCurrentTrack is a no-op.
    EXPECT_EQ(telemetry.trace()->eventCount(), 4u);

    const std::string json = telemetry.trace()->json();
    EXPECT_TRUE(balancedJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(countOccurrences(json, "\"thread_name\""), 1u) << json;
    EXPECT_EQ(countOccurrences(json, "\"ph\": \"X\""), 2u) << json;
    EXPECT_EQ(countOccurrences(json, "\"ph\": \"i\""), 1u) << json;
    EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
    EXPECT_NE(json.find("\"k\": 1"), std::string::npos) << "span args must survive";
    EXPECT_NE(json.find("\"dur\":"), std::string::npos) << "X events carry a duration";
}

TEST(ObsTrace, DisabledSpansAreNoops)
{
    // Null telemetry: must not crash, must not allocate a writer.
    {
        obs::Span span(nullptr, "ghost", "test");
        span.setArgs("{}");
    }
    // Telemetry without tracing enabled: spans are dropped.
    obs::Telemetry telemetry;
    EXPECT_EQ(telemetry.trace(), nullptr);
    {
        obs::Span span(&telemetry, "dropped", "test");
    }
    EXPECT_EQ(telemetry.trace(), nullptr);
}

TEST(ObsTelemetry, FromEnvAndFlush)
{
    const ScopedUnsetEnv cleanup;
    ::unsetenv("GFI_TRACE");
    ::unsetenv("GFI_METRICS");
    EXPECT_EQ(obs::Telemetry::fromEnv(), nullptr);

    const std::string tracePath = ::testing::TempDir() + "gfi_obs_trace.json";
    const std::string metricsPath = ::testing::TempDir() + "gfi_obs_metrics.json";
    ::setenv("GFI_TRACE", tracePath.c_str(), 1);
    ::setenv("GFI_METRICS", metricsPath.c_str(), 1);

    const std::unique_ptr<obs::Telemetry> telemetry = obs::Telemetry::fromEnv();
    ASSERT_NE(telemetry, nullptr);
    EXPECT_EQ(telemetry->tracePath(), tracePath);
    EXPECT_EQ(telemetry->metricsPath(), metricsPath);
    ASSERT_NE(telemetry->trace(), nullptr) << "GFI_TRACE must enable span collection";

    telemetry->metrics().counter("gfi_env_total").inc(2);
    {
        obs::Span span(telemetry.get(), "work", "test");
    }
    telemetry->flush();

    const std::string trace = slurp(tracePath);
    const std::string metrics = slurp(metricsPath);
    EXPECT_TRUE(balancedJson(trace)) << trace;
    EXPECT_NE(trace.find("\"name\": \"work\""), std::string::npos);
    EXPECT_TRUE(balancedJson(metrics)) << ".json path selects JSON exposition";
    EXPECT_NE(metrics.find("\"gfi_env_total\": 2"), std::string::npos) << metrics;

    std::remove(tracePath.c_str());
    std::remove(metricsPath.c_str());
}

// ---------------------------------------------------------------------------
// Campaign determinism contract

TEST(ObsCampaign, TelemetryOffIsByteIdentical)
{
    clearTelemetryEnv();
    const auto faults = digitalDutFaults();
    const std::string plainPath = ::testing::TempDir() + "gfi_obs_plain.jsonl";
    const std::string obsPath = ::testing::TempDir() + "gfi_obs_observed.jsonl";
    std::remove(plainPath.c_str());
    std::remove(obsPath.c_str());

    campaign::CampaignRunner plain(dutFactory());
    configureDutRunner(plain, 2);
    plain.setJournalPath(plainPath);
    const campaign::CampaignReport plainReport = plain.run(faults);

    obs::Telemetry telemetry;
    telemetry.enableTracing();
    campaign::CampaignRunner observed(dutFactory());
    configureDutRunner(observed, 2);
    observed.setJournalPath(obsPath);
    observed.setTelemetry(telemetry);
    const campaign::CampaignReport obsReport = observed.run(faults);

    // Classification, summary and report are identical with and without the
    // sink; the journal gains exactly one trailing "probes" object per line.
    EXPECT_EQ(plainReport.summaryTable(), obsReport.summaryTable());
    EXPECT_EQ(campaign::reportToJson(plainReport), campaign::reportToJson(obsReport));

    const std::string plainJournal = slurp(plainPath);
    ASSERT_FALSE(plainJournal.empty());
    EXPECT_EQ(plainJournal.find("\"probes\""), std::string::npos)
        << "no sink -> historical journal format";

    std::istringstream plainLines(plainJournal);
    std::istringstream obsLines(slurp(obsPath));
    std::string plainLine;
    std::string obsLine;
    while (std::getline(plainLines, plainLine)) {
        ASSERT_TRUE(static_cast<bool>(std::getline(obsLines, obsLine)));
        const std::size_t probesAt = obsLine.find(", \"probes\": {");
        ASSERT_NE(probesAt, std::string::npos) << obsLine;
        // Strip the probes object (last key before the closing brace).
        const std::string stripped =
            obsLine.substr(0, probesAt) + obsLine.substr(obsLine.size() - 1);
        EXPECT_EQ(stripped, plainLine);
        EXPECT_TRUE(balancedJson(obsLine)) << obsLine;
    }
    EXPECT_FALSE(static_cast<bool>(std::getline(obsLines, obsLine)));

    EXPECT_GT(telemetry.trace()->eventCount(), faults.size())
        << "one span per run plus the campaign phases";
    EXPECT_EQ(telemetry.metrics().counterValue("gfi_run_attempts_total"), faults.size());

    std::remove(plainPath.c_str());
    std::remove(obsPath.c_str());
}

TEST(ObsCampaign, CounterTotalsInvariantAcrossWorkerWidths)
{
    clearTelemetryEnv();
    const auto faults = digitalDutFaults();
    ASSERT_GE(faults.size(), 8u);

    std::map<std::string, std::uint64_t> baseline;
    for (const unsigned workers : {1u, 4u, 8u}) {
        obs::Telemetry telemetry;
        campaign::CampaignRunner runner(dutFactory());
        configureDutRunner(runner, workers);
        runner.setTelemetry(telemetry);
        runner.run(faults);

        const auto counts = telemetry.metrics().counterValues();
        std::uint64_t runsTotal = 0;
        for (const auto& [name, value] : counts) {
            if (name.rfind("gfi_runs_total{", 0) == 0) {
                runsTotal += value;
            }
        }
        EXPECT_EQ(runsTotal, faults.size());
        EXPECT_GT(counts.at("gfi_digital_events_total"), 0u);
        EXPECT_GT(counts.at("gfi_digital_delta_cycles_total"), 0u);

        if (workers == 1u) {
            baseline = counts;
        } else {
            EXPECT_EQ(counts, baseline)
                << "counter totals must not depend on worker width (" << workers
                << " workers)";
        }
    }
}

TEST(ObsCampaign, JournalResumeReproducesCounterTotals)
{
    clearTelemetryEnv();
    const auto faults = digitalDutFaults();
    const std::string path = ::testing::TempDir() + "gfi_obs_resume.jsonl";
    std::remove(path.c_str());

    obs::Telemetry first;
    campaign::CampaignRunner runner(dutFactory());
    configureDutRunner(runner, 2);
    runner.setJournalPath(path);
    runner.setTelemetry(first);
    runner.run(faults);

    // A fresh runner restores every run from the journal; the embedded probe
    // deltas must rebuild the exact same counter totals without simulating.
    obs::Telemetry second;
    campaign::CampaignRunner resumed(dutFactory());
    configureDutRunner(resumed, 2);
    resumed.setJournalPath(path);
    resumed.setTelemetry(second);
    const campaign::CampaignReport report = resumed.run(faults);
    for (const campaign::RunResult& r : report.runs) {
        EXPECT_TRUE(r.diagnostics.fromJournal);
    }
    EXPECT_EQ(second.metrics().counterValues(), first.metrics().counterValues());

    std::remove(path.c_str());
}

TEST(ObsCampaign, TimeoutRunCarriesProbeSnapshot)
{
    clearTelemetryEnv();
    auto faults = digitalDutFaults();
    faults.resize(1);

    campaign::CampaignRunner runner(dutFactory());
    configureDutRunner(runner, 1);
    WatchdogConfig watchdog;
    watchdog.digitalWaves = 50; // far below a full run; golden is unaffected
    runner.setWatchdogConfig(watchdog);
    const campaign::CampaignReport report = runner.run(faults);

    ASSERT_EQ(report.runs.size(), 1u);
    const campaign::RunResult& r = report.runs[0];
    EXPECT_EQ(r.outcome, campaign::Outcome::Timeout);
    ASSERT_TRUE(r.diagnostics.probes.valid)
        << "the stall picture must survive the watchdog unwind";
    EXPECT_GT(r.diagnostics.probes.deltaCycles, 0u);
    EXPECT_GT(r.diagnostics.probes.digitalEvents, 0u);
    EXPECT_NE(r.diagnostics.probes.stallSummary().find("waves"), std::string::npos);
}

TEST(ObsCampaign, NonForkResumeSuppressesForkFooter)
{
    clearTelemetryEnv();
    auto faults = digitalDutFaults();
    faults.resize(4);
    const std::string path = ::testing::TempDir() + "gfi_obs_footer.jsonl";
    std::remove(path.c_str());

    // Fork-mode campaign with timing on: forked runs carry checkpoint
    // bookkeeping into the journal and the summary prints the fork footer.
    campaign::CampaignRunner forked(
        [] { return std::make_unique<duts::DigitalDutTestbench>(); });
    forked.setWorkers(1);
    forked.setJournalPath(path);
    forked.setCheckpointCadence(kMicrosecond);
    const campaign::CampaignReport forkedReport = forked.run(faults);
    EXPECT_NE(forkedReport.summaryTable().find("forked runs"), std::string::npos);

    // Resuming that journal with forking disabled must not resurrect the
    // footer: this campaign forked nothing.
    campaign::CampaignRunner scratch(
        [] { return std::make_unique<duts::DigitalDutTestbench>(); });
    scratch.setWorkers(1);
    scratch.setJournalPath(path);
    scratch.setCheckpointCadence(-1);
    const campaign::CampaignReport resumedReport = scratch.run(faults);
    for (const campaign::RunResult& r : resumedReport.runs) {
        EXPECT_TRUE(r.diagnostics.fromJournal);
        EXPECT_EQ(r.diagnostics.checkpointTime, 0);
        EXPECT_EQ(r.diagnostics.resimulatedTime, 0);
    }
    EXPECT_EQ(resumedReport.summaryTable().find("forked runs"), std::string::npos)
        << resumedReport.summaryTable();

    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Journal probe embedding

TEST(ObsJournal, ProbesRoundTrip)
{
    campaign::RunResult r;
    r.outcome = campaign::Outcome::Latent;
    r.diagnostics.probes.valid = true;
    r.diagnostics.probes.digitalEvents = 123;
    r.diagnostics.probes.deltaCycles = 45;
    r.diagnostics.probes.queueHighWater = 7;
    r.diagnostics.probes.pendingEvents = 2;
    r.diagnostics.probes.analogAcceptedSteps = 900;
    r.diagnostics.probes.analogRejectedSteps = 11;
    r.diagnostics.probes.newtonIterations = 2345;
    r.diagnostics.probes.companionRebuilds = 3;
    r.diagnostics.probes.minAcceptedDt = 1.25e-12;
    r.diagnostics.probes.lastAcceptedDt = 5e-10;
    r.diagnostics.probes.atodCrossings = 17;
    r.diagnostics.probes.dtoaEvents = 19;

    // Without the opt-in (or without a valid snapshot) the line format stays
    // exactly historical.
    EXPECT_EQ(campaign::CampaignJournal::entryToJson(0, r).find("probes"),
              std::string::npos);
    campaign::RunResult bare;
    EXPECT_EQ(campaign::CampaignJournal::entryToJson(0, bare, true).find("probes"),
              std::string::npos);

    const std::string line = campaign::CampaignJournal::entryToJson(9, r, true);
    EXPECT_TRUE(balancedJson(line)) << line;
    const auto parsed = campaign::CampaignJournal::parseLine(line);
    ASSERT_TRUE(parsed.has_value()) << line;

    const obs::ProbeSnapshot& p = parsed->result.diagnostics.probes;
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.digitalEvents, 123u);
    EXPECT_EQ(p.deltaCycles, 45u);
    EXPECT_EQ(p.queueHighWater, 7u);
    EXPECT_EQ(p.pendingEvents, 2u);
    EXPECT_EQ(p.analogAcceptedSteps, 900u);
    EXPECT_EQ(p.analogRejectedSteps, 11u);
    EXPECT_EQ(p.newtonIterations, 2345u);
    EXPECT_EQ(p.companionRebuilds, 3u);
    EXPECT_NEAR(p.minAcceptedDt, 1.25e-12, 1e-18);
    EXPECT_NEAR(p.lastAcceptedDt, 5e-10, 1e-16);
    EXPECT_EQ(p.atodCrossings, 17u);
    EXPECT_EQ(p.dtoaEvents, 19u);

    const auto plain = campaign::CampaignJournal::parseLine(
        campaign::CampaignJournal::entryToJson(9, r, false));
    ASSERT_TRUE(plain.has_value());
    EXPECT_FALSE(plain->result.diagnostics.probes.valid);
}

// ---------------------------------------------------------------------------
// Checkpoint-store usage counters

TEST(ObsStore, CheckpointStoreStats)
{
    snapshot::CheckpointStore store;
    const auto zero = store.stats();
    EXPECT_EQ(zero.puts, 0u);
    EXPECT_EQ(zero.bytes, 0u);

    // Probing an empty store (fork mode off) is untracked by design.
    EXPECT_EQ(store.nearestBefore("tb", 100), nullptr);
    EXPECT_EQ(store.stats().misses, 0u);

    auto snap = [](SimTime t, std::size_t bytes) {
        auto s = std::make_shared<snapshot::Snapshot>();
        s->time = t;
        s->bytes.resize(bytes);
        return s;
    };
    store.put("tb", snap(10, 100));
    store.put("tb", snap(20, 50));
    EXPECT_EQ(store.stats().puts, 2u);
    EXPECT_EQ(store.stats().bytes, 150u);

    EXPECT_EQ(store.nearestBefore("tb", 10), nullptr) << "strictly-before lookup";
    EXPECT_EQ(store.stats().misses, 1u);
    ASSERT_NE(store.nearestBefore("tb", 25), nullptr);
    EXPECT_EQ(store.stats().hits, 1u);

    // Replacing a checkpoint at the same instant swaps its byte accounting.
    store.put("tb", snap(20, 80));
    EXPECT_EQ(store.stats().puts, 3u);
    EXPECT_EQ(store.stats().bytes, 180u);

    store.clear();
    const auto cleared = store.stats();
    EXPECT_EQ(cleared.puts, 0u);
    EXPECT_EQ(cleared.hits, 0u);
    EXPECT_EQ(cleared.misses, 0u);
    EXPECT_EQ(cleared.bytes, 0u);
}

// ---------------------------------------------------------------------------
// Trace writer hardening

TEST(ObsTrace, EscapesControlCharacters)
{
    obs::Telemetry telemetry;
    telemetry.enableTracing();
    ASSERT_NE(telemetry.trace(), nullptr);
    // Span names are caller-controlled; every JSON-hostile byte must come out
    // escaped so the trace file always parses.
    telemetry.trace()->instantEvent("tab\there \"quoted\" back\\slash\nnl\rcr \x01 bell",
                                    "test");
    const std::string json = telemetry.trace()->json();
    EXPECT_NE(json.find("tab\\there"), std::string::npos) << json;
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
    EXPECT_NE(json.find("\\nnl"), std::string::npos);
    EXPECT_NE(json.find("\\rcr"), std::string::npos);
    EXPECT_NE(json.find("\\u0001"), std::string::npos);
    for (char c : json) {
        EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n')
            << "raw control byte leaked into the trace JSON";
    }
    EXPECT_NO_THROW(util::parseJson(json)) << json;
}

TEST(ObsTrace, ConcurrentSpanEmission)
{
    obs::Telemetry telemetry;
    telemetry.enableTracing();
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 400;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&telemetry, t] {
            telemetry.trace()->nameCurrentTrack("worker " + std::to_string(t));
            for (int i = 0; i < kSpansPerThread; ++i) {
                obs::Span span(&telemetry, "run " + std::to_string(i), "test");
                span.setArgs("{\"thread\": " + std::to_string(t) + "}");
                if (i % 50 == 0) {
                    telemetry.trace()->instantEvent("mark", "test");
                }
            }
        });
    }
    for (std::thread& th : threads) {
        th.join();
    }

    // Per thread: one metadata event, kSpansPerThread spans, 8 instants.
    EXPECT_EQ(telemetry.trace()->eventCount(),
              static_cast<std::size_t>(kThreads) * (1 + kSpansPerThread + 8));
    const std::string json = telemetry.trace()->json();
    EXPECT_TRUE(balancedJson(json));
    const util::JsonValue doc = util::parseJson(json);
    const util::JsonValue* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_EQ(events->asArray().size(), telemetry.trace()->eventCount());
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(ObsFlightRecorder, RingKeepsLastWindow)
{
    obs::FlightRecorder fr(4);
    EXPECT_EQ(fr.capacity(), 4u);
    EXPECT_EQ(fr.size(), 0u);
    EXPECT_EQ(fr.lastOfKind(obs::FlightRecorder::Kind::Wave), nullptr);
    EXPECT_TRUE(fr.jsonl().empty());

    for (std::uint64_t i = 0; i < 10; ++i) {
        fr.record(obs::FlightRecorder::Kind::Wave, static_cast<SimTime>(i * 10), 0.0, i,
                  i + 1, 0.0);
    }
    EXPECT_EQ(fr.size(), 4u);
    EXPECT_EQ(fr.totalRecorded(), 10u);

    const std::vector<obs::FlightRecorder::Event> window = fr.window();
    ASSERT_EQ(window.size(), 4u);
    for (std::size_t i = 0; i < window.size(); ++i) {
        EXPECT_EQ(window[i].a, 6u + i) << "window must be the oldest-to-newest tail";
    }
    const obs::FlightRecorder::Event* last =
        fr.lastOfKind(obs::FlightRecorder::Kind::Wave);
    ASSERT_NE(last, nullptr);
    EXPECT_EQ(last->a, 9u);
    EXPECT_EQ(fr.lastOfKind(obs::FlightRecorder::Kind::Restore), nullptr);

    // Each JSONL line is one parseable object with the kind-specific payload.
    std::istringstream lines(fr.jsonl());
    std::string line;
    std::size_t n = 0;
    while (std::getline(lines, line)) {
        const util::JsonValue v = util::parseJson(line);
        EXPECT_EQ(v.find("seq")->asNumber(), static_cast<double>(n));
        EXPECT_EQ(v.find("kind")->asString(), "wave");
        EXPECT_EQ(v.find("waves")->asNumber(), static_cast<double>(6 + n));
        EXPECT_EQ(v.find("pending_events")->asNumber(), static_cast<double>(7 + n));
        ++n;
    }
    EXPECT_EQ(n, 4u);

    const util::JsonValue trace = util::parseJson(fr.chromeTraceJson());
    const util::JsonValue* events = trace.find("traceEvents");
    ASSERT_NE(events, nullptr);
    // 4 track-name metadata events plus the 4-event window.
    EXPECT_EQ(events->asArray().size(), 8u);

    fr.clear();
    EXPECT_EQ(fr.size(), 0u);
    EXPECT_EQ(fr.totalRecorded(), 0u);
}

TEST(ObsFlightRecorder, WriteArtifactsCreatesDirectories)
{
    const std::string root = ::testing::TempDir() + "gfi_fr_artifacts";
    std::filesystem::remove_all(root);
    const std::string stem = root + "/nested/run-test-a1";

    obs::FlightRecorder fr;
    fr.record(obs::FlightRecorder::Kind::SolverAccept, 0, 1.5e-6, 42, 0, 2.5e-9);
    fr.record(obs::FlightRecorder::Kind::AtoD, 2 * kMicrosecond, 2e-6, 7, 0, 1.0);
    fr.writeArtifacts(stem);

    const std::string jsonl = slurp(stem + ".jsonl");
    ASSERT_FALSE(jsonl.empty());
    EXPECT_NE(jsonl.find("\"kind\": \"solver-accept\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"rising\": true"), std::string::npos);
    const std::string trace = slurp(stem + ".trace.json");
    EXPECT_NO_THROW(util::parseJson(trace)) << trace;

    std::filesystem::remove_all(root);
}

// ---------------------------------------------------------------------------
// Forensic dumps from the campaign engine

TEST(ObsForensics, TimeoutDumpMatchesStallSnapshot)
{
    clearTelemetryEnv();
    auto faults = digitalDutFaults();
    faults.resize(1);

    auto runWithForensics = [&](const std::string& dir) {
        std::filesystem::remove_all(dir);
        campaign::CampaignRunner runner(dutFactory());
        configureDutRunner(runner, 1);
        WatchdogConfig watchdog;
        watchdog.digitalWaves = 50; // seeded Timeout; golden is unaffected
        runner.setWatchdogConfig(watchdog);
        runner.setForensics(dir);
        return runner.run(faults);
    };

    const std::string dir = ::testing::TempDir() + "gfi_forensics_a";
    const campaign::CampaignReport report = runWithForensics(dir);
    ASSERT_EQ(report.runs.size(), 1u);
    const campaign::RunDiagnostics& d = report.runs[0].diagnostics;
    EXPECT_EQ(report.runs[0].outcome, campaign::Outcome::Timeout);
    ASSERT_FALSE(d.forensic.empty()) << "abnormal outcome must dump a forensic window";
    EXPECT_EQ(d.forensic.rfind(dir + "/run-", 0), 0u) << d.forensic;

    // The final recorded wave must agree with the stall snapshot's scheduler
    // counters: the watchdog threw immediately after that record, so nothing
    // ran in between.
    const std::string jsonl = slurp(d.forensic + ".jsonl");
    ASSERT_FALSE(jsonl.empty());
    std::istringstream lines(jsonl);
    std::string line;
    std::string lastWave;
    while (std::getline(lines, line)) {
        if (util::parseJson(line).find("kind")->asString() == "wave") {
            lastWave = line;
        }
    }
    ASSERT_FALSE(lastWave.empty());
    const util::JsonValue wave = util::parseJson(lastWave);
    ASSERT_TRUE(d.probes.valid);
    EXPECT_EQ(wave.find("waves")->asNumber(), static_cast<double>(d.probes.deltaCycles));
    EXPECT_EQ(wave.find("pending_events")->asNumber(),
              static_cast<double>(d.probes.pendingEvents));

    // Perfetto-loadable companion artifact with a non-empty event list.
    const util::JsonValue trace = util::parseJson(slurp(d.forensic + ".trace.json"));
    const util::JsonValue* events = trace.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->asArray().size(), 4u);

    // Determinism: the same campaign dumps byte-identical artifacts — events
    // carry simulated time and kernel counters only, never the wall clock.
    const std::string dir2 = ::testing::TempDir() + "gfi_forensics_b";
    const campaign::CampaignReport again = runWithForensics(dir2);
    ASSERT_FALSE(again.runs[0].diagnostics.forensic.empty());
    EXPECT_EQ(slurp(again.runs[0].diagnostics.forensic + ".jsonl"), jsonl);
    EXPECT_EQ(slurp(again.runs[0].diagnostics.forensic + ".trace.json"),
              slurp(d.forensic + ".trace.json"));

    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(dir2);
}

TEST(ObsForensics, JournalCarriesForensicStem)
{
    campaign::RunResult r;
    r.outcome = campaign::Outcome::Timeout;
    r.diagnostics.forensic = "forensics/run-0123abcd-a1";
    const std::string line = campaign::CampaignJournal::entryToJson(4, r);
    EXPECT_NE(line.find("\"forensic\": \"forensics/run-0123abcd-a1\""),
              std::string::npos)
        << line;
    const auto parsed = campaign::CampaignJournal::parseLine(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->result.diagnostics.forensic, r.diagnostics.forensic);

    // No dump -> historical line format, byte for byte.
    campaign::RunResult bare;
    EXPECT_EQ(campaign::CampaignJournal::entryToJson(4, bare).find("forensic"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Live progress streaming

TEST(ObsProgress, DeterministicHeartbeatStream)
{
    clearTelemetryEnv();
    const auto faults = digitalDutFaults();

    // The workers field reports the actual pool width, so normalize it
    // before comparing streams across widths.
    auto maskWorkers = [](std::string line) {
        const std::string key = "\"workers\": ";
        const std::size_t at = line.find(key);
        if (at != std::string::npos) {
            std::size_t end = at + key.size();
            while (end < line.size() && std::isdigit(static_cast<unsigned char>(line[end]))) {
                ++end;
            }
            line.replace(at + key.size(), end - (at + key.size()), "W");
        }
        return line;
    };

    auto runStream = [&](unsigned workers) {
        std::vector<std::string> lines;
        campaign::CampaignRunner runner(dutFactory());
        configureDutRunner(runner, workers);
        runner.setProgressSink([&lines](const std::string& l) { lines.push_back(l); },
                               0.0); // <= 0: one heartbeat per commit
        runner.run(faults);
        return lines;
    };

    auto masked = [&](std::vector<std::string> lines) {
        for (std::string& l : lines) {
            l = maskWorkers(std::move(l));
        }
        return lines;
    };

    const std::vector<std::string> serial = runStream(1);
    // One start line, one heartbeat per committed run, one done line.
    ASSERT_EQ(serial.size(), faults.size() + 2);
    EXPECT_NE(serial.front().find("\"event\": \"start\""), std::string::npos);
    EXPECT_NE(serial.front().find("\"total\": " + std::to_string(faults.size())),
              std::string::npos)
        << serial.front();
    EXPECT_NE(serial.back().find("\"event\": \"done\""), std::string::npos);
    EXPECT_NE(serial.back().find("\"completed\": " + std::to_string(faults.size())),
              std::string::npos);

    std::size_t lastCompleted = 0;
    for (const std::string& line : serial) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.back(), '\n');
        const util::JsonValue v = util::parseJson(line);
        const std::size_t completed =
            static_cast<std::size_t>(v.find("completed")->asNumber());
        EXPECT_GE(completed, lastCompleted) << "cumulative counts must be monotone";
        lastCompleted = completed;
        ASSERT_NE(v.find("outcomes"), nullptr);
        // With timing recording off the stream is byte-deterministic: the
        // elapsed clock is pinned and the rate/ETA fields are omitted.
        EXPECT_EQ(v.find("elapsed_s")->asNumber(), 0.0);
        EXPECT_EQ(v.find("runs_per_s"), nullptr);
        EXPECT_EQ(v.find("eta_s"), nullptr);
    }

    // The stream commits in fault order, so it is identical at any width
    // apart from the reported pool size.
    EXPECT_EQ(masked(runStream(4)), masked(serial));
    EXPECT_EQ(masked(runStream(8)), masked(serial));
}

TEST(ObsProgress, ResumeReportsCumulativeCounts)
{
    clearTelemetryEnv();
    const auto faults = digitalDutFaults();
    const std::string path = ::testing::TempDir() + "gfi_obs_progress_resume.jsonl";
    std::remove(path.c_str());

    campaign::CampaignRunner first(dutFactory());
    configureDutRunner(first, 2);
    first.setJournalPath(path);
    first.run(faults);

    std::vector<std::string> lines;
    campaign::CampaignRunner resumed(dutFactory());
    configureDutRunner(resumed, 2);
    resumed.setJournalPath(path);
    resumed.setProgressSink([&lines](const std::string& l) { lines.push_back(l); }, 0.0);
    resumed.run(faults);

    // A fully-journaled campaign still reports every run: restored + new is
    // cumulative, never from zero.
    ASSERT_GE(lines.size(), 2u);
    const util::JsonValue start = util::parseJson(lines.front());
    EXPECT_EQ(start.find("restorable")->asNumber(), static_cast<double>(faults.size()));
    const util::JsonValue done = util::parseJson(lines.back());
    EXPECT_EQ(done.find("completed")->asNumber(), static_cast<double>(faults.size()));
    EXPECT_EQ(done.find("restored")->asNumber(), static_cast<double>(faults.size()));

    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Per-fault cost attribution

TEST(ObsCost, AttributionIsJournaledDataOnly)
{
    clearTelemetryEnv();
    const auto faults = digitalDutFaults();

    auto costJsonAt = [&](unsigned workers) {
        campaign::CampaignRunner runner(dutFactory());
        configureDutRunner(runner, workers);
        const campaign::CampaignReport report = runner.run(faults);
        return campaign::buildCostReport(report).toJson();
    };

    const std::string serial = costJsonAt(1);
    EXPECT_EQ(costJsonAt(8), serial)
        << "cost attribution must not depend on worker width";
    EXPECT_TRUE(balancedJson(serial)) << serial;

    campaign::CampaignRunner runner(dutFactory());
    configureDutRunner(runner, 2);
    const campaign::CampaignReport report = runner.run(faults);
    const campaign::CostReport cost = campaign::buildCostReport(report);
    EXPECT_EQ(cost.total.runs, faults.size());
    EXPECT_EQ(cost.total.attempts, faults.size()) << "no retries in this campaign";
    EXPECT_GT(cost.total.digitalWaves, 0u);
    ASSERT_EQ(cost.byClass.count("bit-flip"), 1u);
    EXPECT_EQ(cost.byClass.at("bit-flip").runs, faults.size());

    std::size_t outcomeRuns = 0;
    for (const auto& [name, bucket] : cost.byOutcome) {
        outcomeRuns += bucket.runs;
    }
    EXPECT_EQ(outcomeRuns, faults.size());

    const std::string table = cost.table();
    EXPECT_NE(table.find("bit-flip"), std::string::npos) << table;

    // Resume path: a report rebuilt purely from the journal attributes the
    // identical cost (restored flag aside, which the bucket counts).
    const std::string path = ::testing::TempDir() + "gfi_obs_cost_resume.jsonl";
    std::remove(path.c_str());
    campaign::CampaignRunner journaled(dutFactory());
    configureDutRunner(journaled, 2);
    journaled.setJournalPath(path);
    const campaign::CampaignReport fresh = journaled.run(faults);

    campaign::CampaignRunner resumed(dutFactory());
    configureDutRunner(resumed, 2);
    resumed.setJournalPath(path);
    const campaign::CampaignReport restored = resumed.run(faults);
    const campaign::CostReport freshCost = campaign::buildCostReport(fresh);
    const campaign::CostReport restoredCost = campaign::buildCostReport(restored);
    EXPECT_EQ(restoredCost.total.runs, freshCost.total.runs);
    EXPECT_EQ(restoredCost.total.digitalWaves, freshCost.total.digitalWaves);
    EXPECT_EQ(restoredCost.total.restored, faults.size());
    EXPECT_EQ(freshCost.total.restored, 0u);

    std::remove(path.c_str());
}

TEST(ObsCost, CsvCostColumnsAreOptIn)
{
    clearTelemetryEnv();
    auto faults = digitalDutFaults();
    faults.resize(4);
    campaign::CampaignRunner runner(dutFactory());
    configureDutRunner(runner, 1);
    const campaign::CampaignReport report = runner.run(faults);

    const std::string plainPath = ::testing::TempDir() + "gfi_obs_plain.csv";
    const std::string costPath = ::testing::TempDir() + "gfi_obs_cost.csv";
    campaign::writeReportCsv(report, plainPath);
    campaign::CsvOptions options;
    options.costColumns = true;
    campaign::writeReportCsv(report, costPath, options);

    const std::string plain = slurp(plainPath);
    const std::string withCost = slurp(costPath);
    EXPECT_EQ(plain.find("digital_waves"), std::string::npos)
        << "default CSV shape must stay byte-identical to the pre-cost format";
    EXPECT_NE(withCost.find("digital_waves"), std::string::npos);
    EXPECT_NE(withCost.find("analog_steps"), std::string::npos);
    EXPECT_NE(withCost.find("forensic"), std::string::npos);
    EXPECT_EQ(countOccurrences(plain, "\n"), countOccurrences(withCost, "\n"));

    std::remove(plainPath.c_str());
    std::remove(costPath.c_str());
}

// ---------------------------------------------------------------------------
// JSON reader

TEST(ObsJson, ParsesValuesStringsAndStructure)
{
    const util::JsonValue v = util::parseJson(
        R"({"a": [1, 2.5, -3e2, true, null], "b": {"c": "x\"y\\zé"}, "a": 9})");
    const util::JsonValue* a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->asArray().size(), 5u) << "duplicate keys: first match wins";
    EXPECT_DOUBLE_EQ(a->asArray()[0].asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(a->asArray()[2].asNumber(), -300.0);
    EXPECT_TRUE(a->asArray()[3].asBool());
    EXPECT_TRUE(a->asArray()[4].isNull());
    EXPECT_EQ(v.find("b")->find("c")->asString(), "x\"y\\z\xc3\xa9");
    EXPECT_EQ(v.find("absent"), nullptr);
    EXPECT_EQ(v.asObject().size(), 3u) << "duplicates are kept in document order";

    // Surrogate pair -> 4-byte UTF-8.
    EXPECT_EQ(util::parseJson("\"\\ud83d\\ude00\"").asString(), "\xf0\x9f\x98\x80");
    EXPECT_THROW(util::parseJson(R"("\ud83d")").asString(), std::runtime_error)
        << "lone surrogate";
}

TEST(ObsJson, RejectsMalformedInput)
{
    const char* bad[] = {
        "",          "{",          "[1,]",  "{\"a\": 1,}", "\"unterminated",
        "1 2",       "{\"a\" 1}",  "nul",   "[1 2]",       "{1: 2}",
    };
    for (const char* text : bad) {
        EXPECT_THROW(util::parseJson(text), std::runtime_error) << text;
    }
    // Raw control characters are illegal inside string literals.
    EXPECT_THROW(util::parseJson(std::string("\"a\x01b\"")), std::runtime_error);
    // Depth bomb: past the nesting bound the parser bails instead of
    // recursing toward a stack overflow.
    const std::string deep(100, '[');
    EXPECT_THROW(util::parseJson(deep + std::string(100, ']')), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Bench regression comparison

std::string benchDoc(const std::string& buildType, double speedup, double eventS,
                     const std::string& sha = "abc1234")
{
    return "{\"meta\": {\"schema\": 1, \"tool\": \"perf_x\", \"git_sha\": \"" + sha +
           "\", \"build_type\": \"" + buildType +
           "\", \"workers\": 0, \"timestamp\": \"2026-01-01T00:00:00Z\"}, "
           "\"benchmark\": \"perf_x\", \"runs\": 120, \"event_s\": " +
           formatDouble(eventS, 6) + ", \"speedup\": " + formatDouble(speedup, 6) +
           ", \"identical\": true}\n";
}

TEST(ObsBenchDiff, SelfCompareIsClean)
{
    const obs::BenchSet set =
        obs::parseBenchSet(benchDoc("Release", 6.0, 2.0), "a.json");
    ASSERT_TRUE(set.meta.present);
    EXPECT_EQ(set.meta.tool, "perf_x");
    EXPECT_EQ(set.meta.buildType, "Release");
    ASSERT_EQ(set.samples.size(), 1u);
    EXPECT_EQ(set.samples[0].name, "perf_x");
    ASSERT_NE(set.samples[0].value("speedup"), nullptr);
    EXPECT_DOUBLE_EQ(*set.samples[0].value("speedup"), 6.0);

    const obs::BenchComparison cmp = obs::compareBenchSets(set, set, 0.20);
    EXPECT_FALSE(cmp.refused());
    EXPECT_EQ(cmp.regressions(), 0u);
    for (const obs::BenchDelta& d : cmp.deltas) {
        EXPECT_FALSE(d.regression) << d.metric;
        EXPECT_FALSE(d.improvement) << d.metric;
    }
}

TEST(ObsBenchDiff, FlagsRegressionsBeyondThreshold)
{
    const obs::BenchSet base =
        obs::parseBenchSet(benchDoc("Release", 6.0, 2.0), "base.json");
    // Speedup down 33 %, duration up 50 %: both beyond a 20 % threshold.
    const obs::BenchSet worse =
        obs::parseBenchSet(benchDoc("Release", 4.0, 3.0), "cur.json");
    const obs::BenchComparison cmp = obs::compareBenchSets(base, worse, 0.20);
    EXPECT_FALSE(cmp.refused());
    EXPECT_EQ(cmp.regressions(), 2u) << cmp.table();
    EXPECT_NE(cmp.table().find("REGRESSION"), std::string::npos);

    // The same magnitudes in the good direction are improvements, not noise.
    const obs::BenchSet better =
        obs::parseBenchSet(benchDoc("Release", 9.0, 1.0), "cur.json");
    const obs::BenchComparison up = obs::compareBenchSets(base, better, 0.20);
    EXPECT_EQ(up.regressions(), 0u);
    std::size_t improvements = 0;
    for (const obs::BenchDelta& d : up.deltas) {
        improvements += d.improvement ? 1 : 0;
    }
    EXPECT_EQ(improvements, 2u);

    // Within-threshold drift is stable.
    const obs::BenchSet close =
        obs::parseBenchSet(benchDoc("Release", 5.5, 2.1), "cur.json");
    EXPECT_EQ(obs::compareBenchSets(base, close, 0.20).regressions(), 0u);
}

TEST(ObsBenchDiff, RefusesMetaMismatchWarnsOnSha)
{
    const obs::BenchSet rel = obs::parseBenchSet(benchDoc("Release", 6.0, 2.0), "a");
    const obs::BenchSet dbg = obs::parseBenchSet(benchDoc("Debug", 6.0, 2.0), "b");
    const obs::BenchComparison refused = obs::compareBenchSets(rel, dbg, 0.20);
    EXPECT_TRUE(refused.refused());
    EXPECT_NE(refused.table().find("INCOMPATIBLE"), std::string::npos);

    // Differing revisions are expected (that is the point of a diff): warn.
    const obs::BenchSet newer =
        obs::parseBenchSet(benchDoc("Release", 6.0, 2.0, "def5678"), "c");
    const obs::BenchComparison shaDiff = obs::compareBenchSets(rel, newer, 0.20);
    EXPECT_FALSE(shaDiff.refused());
    EXPECT_FALSE(shaDiff.warnings.empty());

    // Legacy artifact without a meta block: comparable, but flagged.
    const obs::BenchSet bare = obs::parseBenchSet(
        "{\"benchmark\": \"perf_x\", \"speedup\": 6.0}\n", "legacy");
    EXPECT_FALSE(bare.meta.present);
    const obs::BenchComparison legacy = obs::compareBenchSets(bare, rel, 0.20);
    EXPECT_FALSE(legacy.refused());
    EXPECT_FALSE(legacy.warnings.empty());
}

TEST(ObsBenchDiff, MetricDirectionInference)
{
    using obs::MetricDirection;
    EXPECT_EQ(obs::metricDirection("speedup"), MetricDirection::HigherIsBetter);
    EXPECT_EQ(obs::metricDirection("runs_per_s"), MetricDirection::HigherIsBetter);
    EXPECT_EQ(obs::metricDirection("items_per_second"), MetricDirection::HigherIsBetter);
    EXPECT_EQ(obs::metricDirection("event_s"), MetricDirection::LowerIsBetter);
    EXPECT_EQ(obs::metricDirection("wall_ms"), MetricDirection::LowerIsBetter);
    EXPECT_EQ(obs::metricDirection("runs"), MetricDirection::Ignore);
    EXPECT_EQ(obs::metricDirection("identical"), MetricDirection::Ignore);
    EXPECT_EQ(obs::metricDirection("iterations"), MetricDirection::Ignore);
}

} // namespace
} // namespace gfi
