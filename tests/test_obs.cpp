// Observability subsystem: metrics registry semantics under concurrency,
// histogram edge conventions, Chrome-trace span collection, the
// GFI_TRACE/GFI_METRICS environment switches, and the campaign-level
// determinism contract — telemetry off leaves every output byte-identical,
// telemetry on produces counter totals that are invariant across worker
// widths and reproducible from a journal resume.

#include "core/campaign.hpp"
#include "core/journal.hpp"
#include "core/report.hpp"
#include "duts/digital_dut.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "snapshot/snapshot.hpp"
#include "util/units.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

namespace gfi {
namespace {

// ---------------------------------------------------------------------------
// Helpers

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Structural JSON check: braces/brackets balance outside string literals and
/// the text is one complete value. Catches the classic emitter bugs (trailing
/// comma-free truncation, unescaped quotes) without a JSON parser dependency.
bool balancedJson(const std::string& text)
{
    int depth = 0;
    bool inString = false;
    bool sawValue = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (inString) {
            if (c == '\\') {
                ++i; // skip the escaped character
            } else if (c == '"') {
                inString = false;
            }
            continue;
        }
        if (c == '"') {
            inString = true;
        } else if (c == '{' || c == '[') {
            ++depth;
            sawValue = true;
        } else if (c == '}' || c == ']') {
            if (--depth < 0) {
                return false;
            }
        }
    }
    return depth == 0 && !inString && sawValue;
}

std::size_t countOccurrences(const std::string& haystack, const std::string& needle)
{
    std::size_t n = 0;
    for (std::size_t at = haystack.find(needle); at != std::string::npos;
         at = haystack.find(needle, at + needle.size())) {
        ++n;
    }
    return n;
}

/// Exhaustive bit-flip list over the digital DUT's stored state (the same
/// enumeration the examples use), sized so an 8-worker campaign keeps every
/// worker busy.
std::vector<fault::FaultSpec> digitalDutFaults()
{
    const duts::DigitalDutTestbench probe;
    const std::vector<SimTime> times{kMicrosecond + 7 * kNanosecond,
                                     3 * kMicrosecond + 3 * kNanosecond};
    std::vector<fault::FaultSpec> faults;
    for (const auto& [name, hook] : probe.sim().digital().instrumentation().all()) {
        for (int bit = 0; bit < hook.width; ++bit) {
            for (SimTime t : times) {
                faults.emplace_back(fault::BitFlipFault{name, bit, t});
            }
        }
    }
    return faults;
}

fault::TestbenchFactory dutFactory()
{
    return [] { return std::make_unique<duts::DigitalDutTestbench>(); };
}

void configureDutRunner(campaign::CampaignRunner& runner, unsigned workers)
{
    runner.setWorkers(workers);
    runner.setRecordTiming(false);
}

struct ScopedUnsetEnv {
    ~ScopedUnsetEnv()
    {
        ::unsetenv("GFI_TRACE");
        ::unsetenv("GFI_METRICS");
    }
};

/// Campaign-level tests assert exact byte/count identity, so the ambient
/// environment must not sneak a sink or a fork cadence into the runner.
void clearTelemetryEnv()
{
    ::unsetenv("GFI_TRACE");
    ::unsetenv("GFI_METRICS");
    ::unsetenv("GFI_CHECKPOINT");
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(ObsMetrics, CounterGaugeBasics)
{
    obs::MetricsRegistry m;
    obs::Counter& c = m.counter("gfi_test_total", "help text");
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(m.counterValue("gfi_test_total"), 5u);
    EXPECT_EQ(m.counterValue("absent"), 0u);
    EXPECT_TRUE(m.has("gfi_test_total"));
    EXPECT_FALSE(m.has("absent"));
    EXPECT_EQ(&m.counter("gfi_test_total"), &c) << "registration must be idempotent";

    obs::Gauge& g = m.gauge("gfi_test_level");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.foldMax(1.0);
    EXPECT_DOUBLE_EQ(g.value(), 2.5) << "foldMax must keep the larger value";
    g.foldMax(7.0);
    EXPECT_DOUBLE_EQ(g.value(), 7.0);

    obs::Gauge& mn = m.gauge("gfi_test_min");
    mn.foldMinNonzero(0.0);
    EXPECT_DOUBLE_EQ(mn.value(), 0.0) << "zero must not count as a minimum";
    mn.foldMinNonzero(3.0);
    mn.foldMinNonzero(5.0);
    EXPECT_DOUBLE_EQ(mn.value(), 3.0);
    mn.foldMinNonzero(1.0);
    EXPECT_DOUBLE_EQ(mn.value(), 1.0);

    // One name, one kind: re-registering as another kind is a logic error.
    EXPECT_THROW(m.gauge("gfi_test_total"), std::logic_error);
    EXPECT_THROW(m.histogram("gfi_test_level", {1.0}), std::logic_error);
}

TEST(ObsMetrics, RegistryConcurrency)
{
    obs::MetricsRegistry m;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kIncrements = 20000;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&m, t] {
            // Shared counter, per-thread labeled counter, shared histogram and
            // max-folded gauge — all hammered concurrently, registration
            // included (every thread calls the lookup on each iteration).
            const std::string mine =
                "gfi_thread_total{tid=\"" + std::to_string(t) + "\"}";
            for (std::uint64_t i = 0; i < kIncrements; ++i) {
                m.counter("gfi_shared_total").inc();
                m.counter(mine).inc();
                m.histogram("gfi_shared_hist", {10.0, 100.0}).observe(1.0);
                m.gauge("gfi_shared_max").foldMax(static_cast<double>(t));
            }
        });
    }
    for (std::thread& th : threads) {
        th.join();
    }

    EXPECT_EQ(m.counterValue("gfi_shared_total"), kThreads * kIncrements);
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(m.counterValue("gfi_thread_total{tid=\"" + std::to_string(t) + "\"}"),
                  kIncrements);
    }
    const obs::Histogram& h = m.histogram("gfi_shared_hist", {10.0, 100.0});
    EXPECT_EQ(h.count(), kThreads * kIncrements);
    EXPECT_EQ(h.bucketCount(0), kThreads * kIncrements);
    EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kIncrements));
    EXPECT_DOUBLE_EQ(m.gauge("gfi_shared_max").value(), kThreads - 1.0);
}

TEST(ObsMetrics, HistogramBucketEdges)
{
    obs::Histogram h({10.0, 100.0, 1000.0});

    h.observe(10.0);     // exactly on a bound: counts in that bucket (le)
    h.observe(10.0001);  // just past it: next bucket
    h.observe(100.0);    // on the second bound
    h.observe(1000.0);   // on the last bound
    h.observe(1000.5);   // past every bound: overflow/+Inf bucket
    h.observe(-3.0);     // below everything: first bucket

    EXPECT_EQ(h.bucketCount(0), 2u) << "<= 10";
    EXPECT_EQ(h.bucketCount(1), 2u) << "(10, 100]";
    EXPECT_EQ(h.bucketCount(2), 1u) << "(100, 1000]";
    EXPECT_EQ(h.bucketCount(3), 1u) << "overflow";
    EXPECT_EQ(h.count(), 6u);
    EXPECT_NEAR(h.sum(), 10.0 + 10.0001 + 100.0 + 1000.0 + 1000.5 - 3.0, 1e-9);

    EXPECT_THROW(obs::Histogram({5.0, 1.0}), std::invalid_argument);
}

TEST(ObsMetrics, PrometheusTextExposition)
{
    obs::MetricsRegistry m;
    m.counter("gfi_runs_total{outcome=\"silent\"}", "Completed runs").inc(3);
    m.counter("gfi_runs_total{outcome=\"failure\"}", "Completed runs").inc(1);
    m.gauge("gfi_workers", "Worker threads").set(4);
    obs::Histogram& h = m.histogram("gfi_waves", {10.0, 100.0}, "Waves per run");
    h.observe(5.0);
    h.observe(50.0);
    h.observe(500.0);

    const std::string text = m.prometheusText();

    // TYPE/HELP once per base name, even with two labeled series.
    EXPECT_EQ(countOccurrences(text, "# TYPE gfi_runs_total counter"), 1u) << text;
    EXPECT_EQ(countOccurrences(text, "# HELP gfi_runs_total Completed runs"), 1u);
    EXPECT_NE(text.find("gfi_runs_total{outcome=\"silent\"} 3\n"), std::string::npos);
    EXPECT_NE(text.find("gfi_runs_total{outcome=\"failure\"} 1\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE gfi_workers gauge"), std::string::npos);
    EXPECT_NE(text.find("gfi_workers 4\n"), std::string::npos);

    // Histogram buckets are cumulative and close with +Inf/sum/count.
    EXPECT_NE(text.find("# TYPE gfi_waves histogram"), std::string::npos);
    EXPECT_NE(text.find("gfi_waves_bucket{le=\"10\"} 1\n"), std::string::npos);
    EXPECT_NE(text.find("gfi_waves_bucket{le=\"100\"} 2\n"), std::string::npos);
    EXPECT_NE(text.find("gfi_waves_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
    EXPECT_NE(text.find("gfi_waves_sum 555\n"), std::string::npos);
    EXPECT_NE(text.find("gfi_waves_count 3\n"), std::string::npos);

    // Exposition is deterministic: same registry, same bytes.
    EXPECT_EQ(text, m.prometheusText());
    EXPECT_TRUE(balancedJson(m.json())) << m.json();
    // Labeled names embed quotes; the JSON exposition must escape them when
    // the name becomes an object key.
    EXPECT_NE(m.json().find("\"gfi_runs_total{outcome=\\\"silent\\\"}\": 3"),
              std::string::npos)
        << m.json();
}

// ---------------------------------------------------------------------------
// Trace writer / spans

TEST(ObsTrace, SpanNestingAndJsonShape)
{
    obs::Telemetry telemetry;
    telemetry.enableTracing();
    ASSERT_NE(telemetry.trace(), nullptr);

    telemetry.trace()->nameCurrentTrack("main");
    telemetry.trace()->nameCurrentTrack("main"); // deduplicated
    {
        obs::Span outer(&telemetry, "outer", "test");
        {
            obs::Span inner(&telemetry, "inner", "test");
            inner.setArgs("{\"k\": 1}");
        }
        telemetry.trace()->instantEvent("marker", "test");
    }
    // 1 metadata + 2 spans + 1 instant; the second nameCurrentTrack is a no-op.
    EXPECT_EQ(telemetry.trace()->eventCount(), 4u);

    const std::string json = telemetry.trace()->json();
    EXPECT_TRUE(balancedJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(countOccurrences(json, "\"thread_name\""), 1u) << json;
    EXPECT_EQ(countOccurrences(json, "\"ph\": \"X\""), 2u) << json;
    EXPECT_EQ(countOccurrences(json, "\"ph\": \"i\""), 1u) << json;
    EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
    EXPECT_NE(json.find("\"k\": 1"), std::string::npos) << "span args must survive";
    EXPECT_NE(json.find("\"dur\":"), std::string::npos) << "X events carry a duration";
}

TEST(ObsTrace, DisabledSpansAreNoops)
{
    // Null telemetry: must not crash, must not allocate a writer.
    {
        obs::Span span(nullptr, "ghost", "test");
        span.setArgs("{}");
    }
    // Telemetry without tracing enabled: spans are dropped.
    obs::Telemetry telemetry;
    EXPECT_EQ(telemetry.trace(), nullptr);
    {
        obs::Span span(&telemetry, "dropped", "test");
    }
    EXPECT_EQ(telemetry.trace(), nullptr);
}

TEST(ObsTelemetry, FromEnvAndFlush)
{
    const ScopedUnsetEnv cleanup;
    ::unsetenv("GFI_TRACE");
    ::unsetenv("GFI_METRICS");
    EXPECT_EQ(obs::Telemetry::fromEnv(), nullptr);

    const std::string tracePath = ::testing::TempDir() + "gfi_obs_trace.json";
    const std::string metricsPath = ::testing::TempDir() + "gfi_obs_metrics.json";
    ::setenv("GFI_TRACE", tracePath.c_str(), 1);
    ::setenv("GFI_METRICS", metricsPath.c_str(), 1);

    const std::unique_ptr<obs::Telemetry> telemetry = obs::Telemetry::fromEnv();
    ASSERT_NE(telemetry, nullptr);
    EXPECT_EQ(telemetry->tracePath(), tracePath);
    EXPECT_EQ(telemetry->metricsPath(), metricsPath);
    ASSERT_NE(telemetry->trace(), nullptr) << "GFI_TRACE must enable span collection";

    telemetry->metrics().counter("gfi_env_total").inc(2);
    {
        obs::Span span(telemetry.get(), "work", "test");
    }
    telemetry->flush();

    const std::string trace = slurp(tracePath);
    const std::string metrics = slurp(metricsPath);
    EXPECT_TRUE(balancedJson(trace)) << trace;
    EXPECT_NE(trace.find("\"name\": \"work\""), std::string::npos);
    EXPECT_TRUE(balancedJson(metrics)) << ".json path selects JSON exposition";
    EXPECT_NE(metrics.find("\"gfi_env_total\": 2"), std::string::npos) << metrics;

    std::remove(tracePath.c_str());
    std::remove(metricsPath.c_str());
}

// ---------------------------------------------------------------------------
// Campaign determinism contract

TEST(ObsCampaign, TelemetryOffIsByteIdentical)
{
    clearTelemetryEnv();
    const auto faults = digitalDutFaults();
    const std::string plainPath = ::testing::TempDir() + "gfi_obs_plain.jsonl";
    const std::string obsPath = ::testing::TempDir() + "gfi_obs_observed.jsonl";
    std::remove(plainPath.c_str());
    std::remove(obsPath.c_str());

    campaign::CampaignRunner plain(dutFactory());
    configureDutRunner(plain, 2);
    plain.setJournalPath(plainPath);
    const campaign::CampaignReport plainReport = plain.run(faults);

    obs::Telemetry telemetry;
    telemetry.enableTracing();
    campaign::CampaignRunner observed(dutFactory());
    configureDutRunner(observed, 2);
    observed.setJournalPath(obsPath);
    observed.setTelemetry(telemetry);
    const campaign::CampaignReport obsReport = observed.run(faults);

    // Classification, summary and report are identical with and without the
    // sink; the journal gains exactly one trailing "probes" object per line.
    EXPECT_EQ(plainReport.summaryTable(), obsReport.summaryTable());
    EXPECT_EQ(campaign::reportToJson(plainReport), campaign::reportToJson(obsReport));

    const std::string plainJournal = slurp(plainPath);
    ASSERT_FALSE(plainJournal.empty());
    EXPECT_EQ(plainJournal.find("\"probes\""), std::string::npos)
        << "no sink -> historical journal format";

    std::istringstream plainLines(plainJournal);
    std::istringstream obsLines(slurp(obsPath));
    std::string plainLine;
    std::string obsLine;
    while (std::getline(plainLines, plainLine)) {
        ASSERT_TRUE(static_cast<bool>(std::getline(obsLines, obsLine)));
        const std::size_t probesAt = obsLine.find(", \"probes\": {");
        ASSERT_NE(probesAt, std::string::npos) << obsLine;
        // Strip the probes object (last key before the closing brace).
        const std::string stripped =
            obsLine.substr(0, probesAt) + obsLine.substr(obsLine.size() - 1);
        EXPECT_EQ(stripped, plainLine);
        EXPECT_TRUE(balancedJson(obsLine)) << obsLine;
    }
    EXPECT_FALSE(static_cast<bool>(std::getline(obsLines, obsLine)));

    EXPECT_GT(telemetry.trace()->eventCount(), faults.size())
        << "one span per run plus the campaign phases";
    EXPECT_EQ(telemetry.metrics().counterValue("gfi_run_attempts_total"), faults.size());

    std::remove(plainPath.c_str());
    std::remove(obsPath.c_str());
}

TEST(ObsCampaign, CounterTotalsInvariantAcrossWorkerWidths)
{
    clearTelemetryEnv();
    const auto faults = digitalDutFaults();
    ASSERT_GE(faults.size(), 8u);

    std::map<std::string, std::uint64_t> baseline;
    for (const unsigned workers : {1u, 4u, 8u}) {
        obs::Telemetry telemetry;
        campaign::CampaignRunner runner(dutFactory());
        configureDutRunner(runner, workers);
        runner.setTelemetry(telemetry);
        runner.run(faults);

        const auto counts = telemetry.metrics().counterValues();
        std::uint64_t runsTotal = 0;
        for (const auto& [name, value] : counts) {
            if (name.rfind("gfi_runs_total{", 0) == 0) {
                runsTotal += value;
            }
        }
        EXPECT_EQ(runsTotal, faults.size());
        EXPECT_GT(counts.at("gfi_digital_events_total"), 0u);
        EXPECT_GT(counts.at("gfi_digital_delta_cycles_total"), 0u);

        if (workers == 1u) {
            baseline = counts;
        } else {
            EXPECT_EQ(counts, baseline)
                << "counter totals must not depend on worker width (" << workers
                << " workers)";
        }
    }
}

TEST(ObsCampaign, JournalResumeReproducesCounterTotals)
{
    clearTelemetryEnv();
    const auto faults = digitalDutFaults();
    const std::string path = ::testing::TempDir() + "gfi_obs_resume.jsonl";
    std::remove(path.c_str());

    obs::Telemetry first;
    campaign::CampaignRunner runner(dutFactory());
    configureDutRunner(runner, 2);
    runner.setJournalPath(path);
    runner.setTelemetry(first);
    runner.run(faults);

    // A fresh runner restores every run from the journal; the embedded probe
    // deltas must rebuild the exact same counter totals without simulating.
    obs::Telemetry second;
    campaign::CampaignRunner resumed(dutFactory());
    configureDutRunner(resumed, 2);
    resumed.setJournalPath(path);
    resumed.setTelemetry(second);
    const campaign::CampaignReport report = resumed.run(faults);
    for (const campaign::RunResult& r : report.runs) {
        EXPECT_TRUE(r.diagnostics.fromJournal);
    }
    EXPECT_EQ(second.metrics().counterValues(), first.metrics().counterValues());

    std::remove(path.c_str());
}

TEST(ObsCampaign, TimeoutRunCarriesProbeSnapshot)
{
    clearTelemetryEnv();
    auto faults = digitalDutFaults();
    faults.resize(1);

    campaign::CampaignRunner runner(dutFactory());
    configureDutRunner(runner, 1);
    WatchdogConfig watchdog;
    watchdog.digitalWaves = 50; // far below a full run; golden is unaffected
    runner.setWatchdogConfig(watchdog);
    const campaign::CampaignReport report = runner.run(faults);

    ASSERT_EQ(report.runs.size(), 1u);
    const campaign::RunResult& r = report.runs[0];
    EXPECT_EQ(r.outcome, campaign::Outcome::Timeout);
    ASSERT_TRUE(r.diagnostics.probes.valid)
        << "the stall picture must survive the watchdog unwind";
    EXPECT_GT(r.diagnostics.probes.deltaCycles, 0u);
    EXPECT_GT(r.diagnostics.probes.digitalEvents, 0u);
    EXPECT_NE(r.diagnostics.probes.stallSummary().find("waves"), std::string::npos);
}

TEST(ObsCampaign, NonForkResumeSuppressesForkFooter)
{
    clearTelemetryEnv();
    auto faults = digitalDutFaults();
    faults.resize(4);
    const std::string path = ::testing::TempDir() + "gfi_obs_footer.jsonl";
    std::remove(path.c_str());

    // Fork-mode campaign with timing on: forked runs carry checkpoint
    // bookkeeping into the journal and the summary prints the fork footer.
    campaign::CampaignRunner forked(
        [] { return std::make_unique<duts::DigitalDutTestbench>(); });
    forked.setWorkers(1);
    forked.setJournalPath(path);
    forked.setCheckpointCadence(kMicrosecond);
    const campaign::CampaignReport forkedReport = forked.run(faults);
    EXPECT_NE(forkedReport.summaryTable().find("forked runs"), std::string::npos);

    // Resuming that journal with forking disabled must not resurrect the
    // footer: this campaign forked nothing.
    campaign::CampaignRunner scratch(
        [] { return std::make_unique<duts::DigitalDutTestbench>(); });
    scratch.setWorkers(1);
    scratch.setJournalPath(path);
    scratch.setCheckpointCadence(-1);
    const campaign::CampaignReport resumedReport = scratch.run(faults);
    for (const campaign::RunResult& r : resumedReport.runs) {
        EXPECT_TRUE(r.diagnostics.fromJournal);
        EXPECT_EQ(r.diagnostics.checkpointTime, 0);
        EXPECT_EQ(r.diagnostics.resimulatedTime, 0);
    }
    EXPECT_EQ(resumedReport.summaryTable().find("forked runs"), std::string::npos)
        << resumedReport.summaryTable();

    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Journal probe embedding

TEST(ObsJournal, ProbesRoundTrip)
{
    campaign::RunResult r;
    r.outcome = campaign::Outcome::Latent;
    r.diagnostics.probes.valid = true;
    r.diagnostics.probes.digitalEvents = 123;
    r.diagnostics.probes.deltaCycles = 45;
    r.diagnostics.probes.queueHighWater = 7;
    r.diagnostics.probes.pendingEvents = 2;
    r.diagnostics.probes.analogAcceptedSteps = 900;
    r.diagnostics.probes.analogRejectedSteps = 11;
    r.diagnostics.probes.newtonIterations = 2345;
    r.diagnostics.probes.companionRebuilds = 3;
    r.diagnostics.probes.minAcceptedDt = 1.25e-12;
    r.diagnostics.probes.lastAcceptedDt = 5e-10;
    r.diagnostics.probes.atodCrossings = 17;
    r.diagnostics.probes.dtoaEvents = 19;

    // Without the opt-in (or without a valid snapshot) the line format stays
    // exactly historical.
    EXPECT_EQ(campaign::CampaignJournal::entryToJson(0, r).find("probes"),
              std::string::npos);
    campaign::RunResult bare;
    EXPECT_EQ(campaign::CampaignJournal::entryToJson(0, bare, true).find("probes"),
              std::string::npos);

    const std::string line = campaign::CampaignJournal::entryToJson(9, r, true);
    EXPECT_TRUE(balancedJson(line)) << line;
    const auto parsed = campaign::CampaignJournal::parseLine(line);
    ASSERT_TRUE(parsed.has_value()) << line;

    const obs::ProbeSnapshot& p = parsed->result.diagnostics.probes;
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.digitalEvents, 123u);
    EXPECT_EQ(p.deltaCycles, 45u);
    EXPECT_EQ(p.queueHighWater, 7u);
    EXPECT_EQ(p.pendingEvents, 2u);
    EXPECT_EQ(p.analogAcceptedSteps, 900u);
    EXPECT_EQ(p.analogRejectedSteps, 11u);
    EXPECT_EQ(p.newtonIterations, 2345u);
    EXPECT_EQ(p.companionRebuilds, 3u);
    EXPECT_NEAR(p.minAcceptedDt, 1.25e-12, 1e-18);
    EXPECT_NEAR(p.lastAcceptedDt, 5e-10, 1e-16);
    EXPECT_EQ(p.atodCrossings, 17u);
    EXPECT_EQ(p.dtoaEvents, 19u);

    const auto plain = campaign::CampaignJournal::parseLine(
        campaign::CampaignJournal::entryToJson(9, r, false));
    ASSERT_TRUE(plain.has_value());
    EXPECT_FALSE(plain->result.diagnostics.probes.valid);
}

// ---------------------------------------------------------------------------
// Checkpoint-store usage counters

TEST(ObsStore, CheckpointStoreStats)
{
    snapshot::CheckpointStore store;
    const auto zero = store.stats();
    EXPECT_EQ(zero.puts, 0u);
    EXPECT_EQ(zero.bytes, 0u);

    // Probing an empty store (fork mode off) is untracked by design.
    EXPECT_EQ(store.nearestBefore("tb", 100), nullptr);
    EXPECT_EQ(store.stats().misses, 0u);

    auto snap = [](SimTime t, std::size_t bytes) {
        auto s = std::make_shared<snapshot::Snapshot>();
        s->time = t;
        s->bytes.resize(bytes);
        return s;
    };
    store.put("tb", snap(10, 100));
    store.put("tb", snap(20, 50));
    EXPECT_EQ(store.stats().puts, 2u);
    EXPECT_EQ(store.stats().bytes, 150u);

    EXPECT_EQ(store.nearestBefore("tb", 10), nullptr) << "strictly-before lookup";
    EXPECT_EQ(store.stats().misses, 1u);
    ASSERT_NE(store.nearestBefore("tb", 25), nullptr);
    EXPECT_EQ(store.stats().hits, 1u);

    // Replacing a checkpoint at the same instant swaps its byte accounting.
    store.put("tb", snap(20, 80));
    EXPECT_EQ(store.stats().puts, 3u);
    EXPECT_EQ(store.stats().bytes, 180u);

    store.clear();
    const auto cleared = store.stats();
    EXPECT_EQ(cleared.puts, 0u);
    EXPECT_EQ(cleared.hits, 0u);
    EXPECT_EQ(cleared.misses, 0u);
    EXPECT_EQ(cleared.bytes, 0u);
}

} // namespace
} // namespace gfi
