// Integration tests for the PLL case study (paper Section 5): PFD behavior,
// locking, and the headline fault-injection result (Figure 6's shape).
//
// The full-length experiments live in the bench/ binaries; these tests use a
// shortened observation window to stay fast while still exercising every
// loop component end to end.

#include "core/campaign.hpp"
#include "pll/pll.hpp"
#include "trace/metrics.hpp"

#include <gtest/gtest.h>

namespace gfi::pll {
namespace {

using digital::Logic;

TEST(Pfd, RefEdgeRaisesUpFbEdgeResets)
{
    digital::Circuit c;
    auto& ref = c.logicSignal("ref", Logic::Zero);
    auto& fb = c.logicSignal("fb", Logic::Zero);
    auto& up = c.logicSignal("up", Logic::U);
    auto& down = c.logicSignal("down", Logic::U);
    c.add<PhaseFreqDetector>(c, "pfd", ref, fb, up, down);
    c.runUntil(kNanosecond);

    // Reference leads: UP pulses for the phase difference.
    c.scheduler().scheduleAction(10 * kNanosecond, [&ref] { ref.forceValue(Logic::One); });
    c.runUntil(12 * kNanosecond);
    EXPECT_EQ(up.value(), Logic::One);
    EXPECT_EQ(down.value(), Logic::Zero);

    c.scheduler().scheduleAction(30 * kNanosecond, [&fb] { fb.forceValue(Logic::One); });
    c.runUntil(29 * kNanosecond);
    EXPECT_EQ(up.value(), Logic::One); // still waiting for fb
    c.runUntil(35 * kNanosecond);
    // Both flags were briefly high; the AND reset cleared them.
    EXPECT_EQ(up.value(), Logic::Zero);
    EXPECT_EQ(down.value(), Logic::Zero);
}

TEST(Pfd, SeuHookFlipsUpFlag)
{
    digital::Circuit c;
    auto& ref = c.logicSignal("ref", Logic::Zero);
    auto& fb = c.logicSignal("fb", Logic::Zero);
    auto& up = c.logicSignal("up", Logic::U);
    auto& down = c.logicSignal("down", Logic::U);
    c.add<PhaseFreqDetector>(c, "pfd", ref, fb, up, down);
    c.runUntil(kNanosecond);
    const auto& hook = c.instrumentation().hook("pfd");
    EXPECT_EQ(hook.width, 2);
    c.scheduler().scheduleAction(10 * kNanosecond, [&hook] { hook.flipBit(0); });
    c.runUntil(11 * kNanosecond);
    EXPECT_EQ(up.value(), Logic::One); // spurious UP from the SEU
}

// Shared shortened configuration: lock happens near 90 us with the default
// loop, so 130 us observation is enough for lock tests.
PllConfig shortConfig()
{
    PllConfig cfg;
    cfg.duration = 130 * kMicrosecond;
    return cfg;
}

TEST(PllLock, LocksToNominalFrequency)
{
    PllTestbench tb(shortConfig());
    tb.run();
    const auto& fout = tb.recorder().digitalTrace(names::kFout);
    const SimTime nominal = tb.config().nominalOutputPeriod();
    EXPECT_EQ(nominal, 20 * kNanosecond);

    const SimTime tLock = lockTime(fout, nominal);
    ASSERT_GT(tLock, 0);
    EXPECT_LT(tLock, 120 * kMicrosecond);

    // Locked output: average period within 0.05 % of 20 ns.
    const double avg = trace::averagePeriod(fout, 100);
    EXPECT_NEAR(avg, static_cast<double>(nominal), 0.0005 * nominal);

    // Control voltage settles at (50 MHz - f0) / Kvco = 1 V.
    const auto& vctrl = tb.recorder().analogTrace(names::kVctrl);
    EXPECT_NEAR(vctrl.samples.back().second, 1.0, 0.01);
}

TEST(PllLock, DividerKeepsRatioExactly)
{
    PllTestbench tb(shortConfig());
    tb.run();
    const auto foutEdges = tb.recorder().digitalTrace(names::kFout).risingEdges();
    const auto fbEdges = tb.recorder().digitalTrace(names::kFb).risingEdges();
    ASSERT_GT(fbEdges.size(), 10u);
    // N output cycles per feedback cycle.
    const double ratio = static_cast<double>(foutEdges.size()) /
                         static_cast<double>(fbEdges.size());
    EXPECT_NEAR(ratio, tb.config().dividerN, 2.0);
}

TEST(PllInjection, Figure6ShapeReproduced)
{
    // Shortened variant of the paper's Figure 6 experiment: inject the
    // RT=100ps/FT=300ps/PW=500ps/PA=10mA pulse at the filter input after
    // lock, and verify the three qualitative findings:
    //  (1) the VCO input is disturbed far longer than the pulse width,
    //  (2) the output clock is perturbed for many consecutive cycles,
    //  (3) the PLL eventually recovers (transient, not failure).
    PllConfig cfg;
    cfg.duration = 150 * kMicrosecond;
    const double tInject = 120e-6;

    campaign::CampaignRunner runner([cfg] { return std::make_unique<PllTestbench>(cfg); },
                                    campaign::Tolerance{5e-3, 0.0, 200 * kPicosecond});
    fault::CurrentPulseFault f;
    f.saboteur = names::kSabFilter;
    f.timeSeconds = tInject;
    f.shape = std::make_shared<fault::TrapezoidPulse>(10e-3, 100e-12, 300e-12, 500e-12);
    const auto r = runner.runOne(fault::FaultSpec{f});

    EXPECT_EQ(r.outcome, campaign::Outcome::TransientError);
    // (1) disturbance duration >> 500 ps pulse width.
    EXPECT_GT(r.analogTimeOutsideTol, 100e-9);
    // Charge / C2 = 3 pC / 150 pF = 20 mV initial step on the VCO input.
    EXPECT_NEAR(r.maxAnalogDeviation, 0.02, 0.005);

    // (2) many perturbed output cycles.
    auto tb = runner.makeTestbench();
    fault::armFault(*tb, fault::FaultSpec{f});
    tb->run();
    const auto pert = trace::compareClocks(
        runner.golden().recorder().digitalTrace(names::kFout),
        tb->recorder().digitalTrace(names::kFout), 1e-3, fromSeconds(tInject - 1e-6));
    EXPECT_GT(pert.perturbedCycles, 20);
    EXPECT_GT(toSeconds(pert.perturbationSpan()), 1e-6);
}

TEST(PllInjection, SeuInPfdPerturbsLoop)
{
    // Digital-side SEU in the same instrumented design: flip the PFD UP flag
    // while locked; the spurious charge-pump pulse disturbs the loop.
    PllConfig cfg;
    cfg.duration = 130 * kMicrosecond;
    campaign::CampaignRunner runner([cfg] { return std::make_unique<PllTestbench>(cfg); },
                                    campaign::Tolerance{5e-3, 0.0, 200 * kPicosecond});
    fault::BitFlipFault f{"pll/pfd", 0, 110 * kMicrosecond};
    const auto r = runner.runOne(fault::FaultSpec{f});
    EXPECT_NE(r.outcome, campaign::Outcome::Silent);
}

} // namespace
} // namespace gfi::pll
