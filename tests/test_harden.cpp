// Tests for the hardening library: SEC-DED Hamming coding, TMR, DWC and ECC
// registers, including exhaustive single- and double-error property sweeps.

#include "harden/tmr.hpp"

#include <gtest/gtest.h>

namespace gfi::harden {
namespace {

using namespace digital;

TEST(Hamming, ParityBitCounts)
{
    EXPECT_EQ(hammingParityBits(4), 3);  // Hamming(7,4)
    EXPECT_EQ(hammingParityBits(8), 4);  // Hamming(12,8)
    EXPECT_EQ(hammingParityBits(16), 5);
    EXPECT_EQ(hammingParityBits(32), 6);
    EXPECT_EQ(hammingCodewordBits(8), 13); // 8 + 4 + DED
}

TEST(Hamming, EncodeDecodeCleanRoundTrip)
{
    for (int bits : {4, 8, 11, 16}) {
        for (std::uint64_t data = 0; data < (1ull << std::min(bits, 10)); ++data) {
            const std::uint64_t code = hammingEncode(data, bits);
            const HammingDecode d = hammingDecode(code, bits);
            EXPECT_EQ(d.data, data) << "bits=" << bits;
            EXPECT_FALSE(d.corrected);
            EXPECT_FALSE(d.uncorrectable);
        }
    }
}

// Property: every single-bit error in the codeword is corrected.
class HammingSingleError : public ::testing::TestWithParam<int> {};

TEST_P(HammingSingleError, AllSingleFlipsCorrected)
{
    const int dataBits = GetParam();
    const int codeBits = hammingCodewordBits(dataBits);
    const std::uint64_t data = 0xDEADBEEFCAFEull & ((1ull << dataBits) - 1);
    const std::uint64_t code = hammingEncode(data, dataBits);
    for (int bit = 0; bit < codeBits; ++bit) {
        const HammingDecode d = hammingDecode(code ^ (1ull << bit), dataBits);
        EXPECT_EQ(d.data, data) << "flip bit " << bit;
        EXPECT_TRUE(d.corrected) << "flip bit " << bit;
        EXPECT_FALSE(d.uncorrectable) << "flip bit " << bit;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, HammingSingleError, ::testing::Values(4, 8, 16, 24, 32));

// Property: every double-bit error is detected as uncorrectable.
class HammingDoubleError : public ::testing::TestWithParam<int> {};

TEST_P(HammingDoubleError, AllDoubleFlipsDetected)
{
    const int dataBits = GetParam();
    const int codeBits = hammingCodewordBits(dataBits);
    const std::uint64_t data = 0x5A5A5A5Aull & ((1ull << dataBits) - 1);
    const std::uint64_t code = hammingEncode(data, dataBits);
    for (int a = 0; a < codeBits; ++a) {
        for (int b = a + 1; b < codeBits; ++b) {
            const HammingDecode d =
                hammingDecode(code ^ (1ull << a) ^ (1ull << b), dataBits);
            EXPECT_TRUE(d.uncorrectable) << "flips " << a << "," << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, HammingDoubleError, ::testing::Values(4, 8, 16));

TEST(Hamming, RejectsBadWidths)
{
    EXPECT_THROW((void)hammingParityBits(0), std::invalid_argument);
    EXPECT_THROW((void)hammingParityBits(58), std::invalid_argument);
}

// --- hardened registers ------------------------------------------------------

namespace {
void clockPulse(Circuit& c, LogicSignal& clk, SimTime at)
{
    c.scheduler().scheduleAction(at, [&clk] { clk.forceValue(Logic::One); });
    c.scheduler().scheduleAction(at + 5 * kNanosecond,
                                 [&clk] { clk.forceValue(Logic::Zero); });
}
} // namespace

TEST(TmrRegisterTest, SingleCopyUpsetIsMaskedByVoter)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    Bus d = c.bus("d", 8, Logic::Zero);
    Bus q = c.bus("q", 8, Logic::U);
    auto& reg = c.add<TmrRegister>(c, "tmr", clk, d, q);
    c.scheduler().scheduleAction(kNanosecond, [d] { d.forceUint(0x42); });
    clockPulse(c, clk, 10 * kNanosecond);
    c.runUntil(12 * kNanosecond);
    EXPECT_EQ(q.toUint(), 0x42u);

    // SEU in one copy: the voted output must stay correct.
    const auto& hook = c.instrumentation().hook("tmr/copy1");
    c.scheduler().scheduleAction(20 * kNanosecond, [&hook] { hook.flipBit(3); });
    c.runUntil(22 * kNanosecond);
    EXPECT_EQ(reg.copy(1), 0x4Au);
    EXPECT_EQ(reg.voted(), 0x42u);
    EXPECT_EQ(q.toUint(), 0x42u); // masked

    // The next load scrubs the corrupted copy.
    clockPulse(c, clk, 30 * kNanosecond);
    c.runUntil(32 * kNanosecond);
    EXPECT_EQ(reg.copy(1), 0x42u);
}

TEST(TmrRegisterTest, TwoCopyUpsetDefeatsVoter)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    Bus d = c.bus("d", 8, Logic::Zero);
    Bus q = c.bus("q", 8, Logic::U);
    c.add<TmrRegister>(c, "tmr", clk, d, q);
    c.scheduler().scheduleAction(kNanosecond, [d] { d.forceUint(0x42); });
    clockPulse(c, clk, 10 * kNanosecond);
    c.runUntil(12 * kNanosecond);

    const auto& h0 = c.instrumentation().hook("tmr/copy0");
    const auto& h2 = c.instrumentation().hook("tmr/copy2");
    c.scheduler().scheduleAction(20 * kNanosecond, [&] {
        h0.flipBit(3);
        h2.flipBit(3);
    });
    c.runUntil(22 * kNanosecond);
    EXPECT_EQ(q.toUint(), 0x4Au); // two strikes on the same bit win the vote
}

TEST(DwcRegisterTest, MismatchRaisesErrorFlag)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    Bus d = c.bus("d", 4, Logic::Zero);
    Bus q = c.bus("q", 4, Logic::U);
    auto& err = c.logicSignal("err", Logic::U);
    c.add<DwcRegister>(c, "dwc", clk, d, q, err);
    c.scheduler().scheduleAction(kNanosecond, [d] { d.forceUint(0x9); });
    clockPulse(c, clk, 10 * kNanosecond);
    c.runUntil(12 * kNanosecond);
    EXPECT_EQ(q.toUint(), 0x9u);
    EXPECT_EQ(err.value(), Logic::Zero);

    const auto& hook = c.instrumentation().hook("dwc/copy1");
    c.scheduler().scheduleAction(20 * kNanosecond, [&hook] { hook.flipBit(0); });
    c.runUntil(22 * kNanosecond);
    EXPECT_EQ(err.value(), Logic::One); // detection
    EXPECT_EQ(q.toUint(), 0x9u);        // primary copy untouched

    // Detection-only: a flip in the PRIMARY copy corrupts the output but is
    // still flagged.
    const auto& hook0 = c.instrumentation().hook("dwc/copy0");
    clockPulse(c, clk, 30 * kNanosecond); // re-sync first
    c.scheduler().scheduleAction(40 * kNanosecond, [&hook0] { hook0.flipBit(1); });
    c.runUntil(42 * kNanosecond);
    EXPECT_EQ(q.toUint(), 0xBu);
    EXPECT_EQ(err.value(), Logic::One);
}

TEST(EccRegisterTest, SingleCodewordFlipIsCorrected)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    Bus d = c.bus("d", 8, Logic::Zero);
    Bus q = c.bus("q", 8, Logic::U);
    auto& ue = c.logicSignal("ue", Logic::U);
    auto& reg = c.add<EccRegister>(c, "ecc", clk, d, q, &ue);
    c.scheduler().scheduleAction(kNanosecond, [d] { d.forceUint(0xC3); });
    clockPulse(c, clk, 10 * kNanosecond);
    c.runUntil(12 * kNanosecond);
    EXPECT_EQ(q.toUint(), 0xC3u);

    const auto& hook = c.instrumentation().hook("ecc/code");
    EXPECT_EQ(hook.width, 13); // 8 data + 4 parity + DED
    c.scheduler().scheduleAction(20 * kNanosecond, [&hook] { hook.flipBit(5); });
    c.runUntil(22 * kNanosecond);
    EXPECT_EQ(q.toUint(), 0xC3u); // corrected on the fly
    EXPECT_EQ(ue.value(), Logic::Zero);
    EXPECT_GE(reg.correctionCount(), 1);
}

TEST(EccRegisterTest, DoubleFlipRaisesUncorrectable)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    Bus d = c.bus("d", 8, Logic::Zero);
    Bus q = c.bus("q", 8, Logic::U);
    auto& ue = c.logicSignal("ue", Logic::U);
    c.add<EccRegister>(c, "ecc", clk, d, q, &ue);
    c.scheduler().scheduleAction(kNanosecond, [d] { d.forceUint(0x5A); });
    clockPulse(c, clk, 10 * kNanosecond);
    c.runUntil(12 * kNanosecond);

    const auto& hook = c.instrumentation().hook("ecc/code");
    c.scheduler().scheduleAction(20 * kNanosecond, [&hook] {
        hook.flipBit(2);
        hook.flipBit(9);
    });
    c.runUntil(22 * kNanosecond);
    EXPECT_EQ(ue.value(), Logic::One); // MBU detected, not silently wrong
}

} // namespace
} // namespace gfi::harden
