// Tests for the current-controlled sources (CCCS/CCVS) and their netlist
// cards, plus the campaign report writers.

#include "analog/controlled.hpp"
#include "analog/netlist.hpp"
#include "analog/passive.hpp"
#include "analog/solver.hpp"
#include "analog/sources.hpp"
#include "core/report.hpp"
#include "duts/digital_dut.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace gfi::analog {
namespace {

TEST(CurrentControlled, CccsMirrorsSenseCurrent)
{
    // 1 mA flows through Vsense (5 V across 5 kOhm); F mirrors 2x into RL.
    AnalogSystem sys;
    const NodeId a = sys.node("a");
    const NodeId b = sys.node("b");
    const NodeId out = sys.node("out");
    auto& vs = sys.add<VoltageSource>(sys, "VSUP", a, kGround, 5.0);
    auto& sense = sys.add<VoltageSource>(sys, "VSENSE", a, b, 0.0);
    sys.add<Resistor>(sys, "R1", b, kGround, 5e3);
    sys.add<Cccs>(sys, "F1", kGround, out, sense.branchIndex(), 2.0);
    sys.add<Resistor>(sys, "RL", out, kGround, 1e3);
    (void)vs;

    TransientSolver solver(sys);
    solver.solveDc();
    const Solution sol(sys.state(), sys.nodeCount());
    EXPECT_NEAR(sense.current(sol), 1e-3, 1e-9); // current a -> b through sense
    // CCCS pushes 2 mA from ground to `out`: +2 V across RL.
    EXPECT_NEAR(sys.voltage(out), 2.0, 1e-6);
}

TEST(CurrentControlled, CcvsSensesCurrent)
{
    AnalogSystem sys;
    const NodeId a = sys.node("a");
    const NodeId b = sys.node("b");
    const NodeId out = sys.node("out");
    sys.add<VoltageSource>(sys, "VSUP", a, kGround, 5.0);
    auto& sense = sys.add<VoltageSource>(sys, "VSENSE", a, b, 0.0);
    sys.add<Resistor>(sys, "R1", b, kGround, 5e3);
    sys.add<Ccvs>(sys, "H1", out, kGround, sense.branchIndex(), 4e3); // 4 kOhm transres
    sys.add<Resistor>(sys, "RL", out, kGround, 1e3);

    TransientSolver solver(sys);
    solver.solveDc();
    EXPECT_NEAR(sys.voltage(out), 4.0, 1e-6); // 1 mA * 4 kOhm
}

TEST(CurrentControlled, NetlistFhCards)
{
    AnalogSystem sys;
    parseNetlist(R"(
VSUP a 0 5
VSENSE a b 0
R1 b 0 5k
F1 0 fo VSENSE 2
RF fo 0 1k
H1 ho 0 VSENSE 4k
RH ho 0 1k
)",
                 sys);
    TransientSolver solver(sys);
    solver.solveDc();
    EXPECT_NEAR(sys.voltage(sys.node("fo")), 2.0, 1e-6);
    EXPECT_NEAR(sys.voltage(sys.node("ho")), 4.0, 1e-6);
}

TEST(CurrentControlled, NetlistForwardReferenceRejected)
{
    AnalogSystem sys;
    EXPECT_THROW(parseNetlist("F1 0 out VLATER 2\nVLATER a 0 1\n", sys), std::runtime_error);
}

} // namespace
} // namespace gfi::analog

namespace gfi::campaign {
namespace {

CampaignReport smallReport()
{
    CampaignRunner runner([] { return std::make_unique<duts::DigitalDutTestbench>(); });
    return runner.run({
        fault::FaultSpec{},
        fault::FaultSpec{
            fault::BitFlipFault{"dut/out_reg", 1, 2 * kMicrosecond + 7 * kNanosecond}},
    });
}

TEST(ReportWriters, CsvHasHeaderAndRows)
{
    const auto report = smallReport();
    writeReportCsv(report, "/tmp/gfi_report.csv");
    std::ifstream in("/tmp/gfi_report.csv");
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_NE(line.find("fault,target,outcome"), std::string::npos);
    int rows = 0;
    while (std::getline(in, line)) {
        ++rows;
    }
    EXPECT_EQ(rows, 2);
}

TEST(ReportWriters, JsonIsWellFormedish)
{
    const auto report = smallReport();
    const std::string json = reportToJson(report);
    EXPECT_NE(json.find("\"summary\""), std::string::npos);
    EXPECT_NE(json.find("\"total\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"runs\""), std::string::npos);
    EXPECT_NE(json.find("bit-flip dut/out_reg[1]"), std::string::npos);
    // Balanced braces (cheap sanity check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));

    writeReportJson(report, "/tmp/gfi_report.json");
    std::ifstream in("/tmp/gfi_report.json");
    EXPECT_TRUE(in.good());
}

} // namespace
} // namespace gfi::campaign
