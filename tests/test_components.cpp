// Unit tests for the digital component library: gates, flip-flops, registers,
// counters, dividers, shift registers, LFSRs, FSMs and datapath blocks —
// including their SEU instrumentation hooks.

#include "digital/arith.hpp"
#include "digital/fsm.hpp"
#include "digital/gates.hpp"
#include "digital/sequential.hpp"

#include <gtest/gtest.h>

namespace gfi::digital {
namespace {

// Drives a clock manually: force edges with explicit scheduler actions.
void pulseClock(Circuit& c, LogicSignal& clk, SimTime at)
{
    c.scheduler().scheduleAction(at, [&clk] { clk.forceValue(Logic::One); });
    c.scheduler().scheduleAction(at + 5 * kNanosecond,
                                 [&clk] { clk.forceValue(Logic::Zero); });
}

TEST(Gates, TwoInputTruthTables)
{
    Circuit c;
    auto& a = c.logicSignal("a", Logic::Zero);
    auto& b = c.logicSignal("b", Logic::Zero);
    auto& yAnd = c.logicSignal("yAnd", Logic::U);
    auto& yOr = c.logicSignal("yOr", Logic::U);
    auto& yXor = c.logicSignal("yXor", Logic::U);
    c.add<AndGate>(c, "g1", a, b, yAnd);
    c.add<OrGate>(c, "g2", a, b, yOr);
    c.add<XorGate>(c, "g3", a, b, yXor);

    const Logic table[4][2] = {
        {Logic::Zero, Logic::Zero},
        {Logic::Zero, Logic::One},
        {Logic::One, Logic::Zero},
        {Logic::One, Logic::One},
    };
    SimTime t = 0;
    for (const auto& row : table) {
        const Logic va = row[0];
        const Logic vb = row[1];
        c.scheduler().scheduleAction(t, [&a, &b, va, vb] {
            a.forceValue(va);
            b.forceValue(vb);
        });
        t += 10 * kNanosecond;
        c.runUntil(t - kNanosecond);
        const bool ba = va == Logic::One;
        const bool bb = vb == Logic::One;
        EXPECT_EQ(yAnd.value(), fromBool(ba && bb));
        EXPECT_EQ(yOr.value(), fromBool(ba || bb));
        EXPECT_EQ(yXor.value(), fromBool(ba != bb));
    }
}

TEST(Gates, WideNand)
{
    Circuit c;
    auto& a = c.logicSignal("a", Logic::One);
    auto& b = c.logicSignal("b", Logic::One);
    auto& d = c.logicSignal("d", Logic::One);
    auto& y = c.logicSignal("y", Logic::U);
    c.add<Gate>(c, "nand3", GateKind::Nand, std::vector<LogicSignal*>{&a, &b, &d}, y);
    c.runUntil(kNanosecond);
    EXPECT_EQ(y.value(), Logic::Zero);
    c.scheduler().scheduleAction(2 * kNanosecond, [&d] { d.forceValue(Logic::Zero); });
    c.runUntil(3 * kNanosecond);
    EXPECT_EQ(y.value(), Logic::One);
}

TEST(Gates, PropagationDelayRespected)
{
    Circuit c;
    auto& a = c.logicSignal("a", Logic::Zero);
    auto& y = c.logicSignal("y", Logic::U);
    c.add<NotGate>(c, "inv", a, y, 2 * kNanosecond);
    c.runUntil(3 * kNanosecond); // initial evaluation lands after one delay
    EXPECT_EQ(y.value(), Logic::One);
    c.scheduler().scheduleAction(10 * kNanosecond, [&a] { a.forceValue(Logic::One); });
    c.runUntil(11 * kNanosecond);
    EXPECT_EQ(y.value(), Logic::One); // not yet
    c.runUntil(12 * kNanosecond);
    EXPECT_EQ(y.value(), Logic::Zero);
}

TEST(Gates, InertialDelayFiltersGlitch)
{
    // A pulse shorter than the gate delay must not appear at the output.
    Circuit c;
    auto& a = c.logicSignal("a", Logic::Zero);
    auto& y = c.logicSignal("y", Logic::U);
    c.add<Gate>(c, "buf", GateKind::Buf, std::vector<LogicSignal*>{&a}, y, 3 * kNanosecond);
    c.runUntil(5 * kNanosecond); // let the initial evaluation settle first
    int yEvents = 0;
    SignalWatch::onEvent(y, [&] { ++yEvents; });
    // 1 ns glitch at t=10ns.
    c.scheduler().scheduleAction(10 * kNanosecond, [&a] { a.forceValue(Logic::One); });
    c.scheduler().scheduleAction(11 * kNanosecond, [&a] { a.forceValue(Logic::Zero); });
    c.runUntil(30 * kNanosecond);
    EXPECT_EQ(y.value(), Logic::Zero);
    EXPECT_EQ(yEvents, 0); // glitch swallowed by inertial cancellation
}

TEST(Mux2Test, SelectsAndHandlesUnknownSel)
{
    Circuit c;
    auto& a = c.logicSignal("a", Logic::Zero);
    auto& b = c.logicSignal("b", Logic::One);
    auto& sel = c.logicSignal("sel", Logic::Zero);
    auto& y = c.logicSignal("y", Logic::U);
    c.add<Mux2>(c, "mux", a, b, sel, y);
    c.runUntil(kNanosecond);
    EXPECT_EQ(y.value(), Logic::Zero);
    c.scheduler().scheduleAction(2 * kNanosecond, [&sel] { sel.forceValue(Logic::One); });
    c.runUntil(3 * kNanosecond);
    EXPECT_EQ(y.value(), Logic::One);
    c.scheduler().scheduleAction(4 * kNanosecond, [&sel] { sel.forceValue(Logic::X); });
    c.runUntil(5 * kNanosecond);
    EXPECT_EQ(y.value(), Logic::X); // a != b, unknown select propagates X
}

TEST(DFlipFlopTest, CapturesOnRisingEdge)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& d = c.logicSignal("d", Logic::Zero);
    auto& q = c.logicSignal("q", Logic::U);
    c.add<DFlipFlop>(c, "ff", clk, d, q);
    c.runUntil(kNanosecond);
    c.scheduler().scheduleAction(5 * kNanosecond, [&d] { d.forceValue(Logic::One); });
    pulseClock(c, clk, 10 * kNanosecond);
    c.runUntil(12 * kNanosecond);
    EXPECT_EQ(q.value(), Logic::One);
    // d change without a clock edge must not propagate.
    c.scheduler().scheduleAction(20 * kNanosecond, [&d] { d.forceValue(Logic::Zero); });
    c.runUntil(25 * kNanosecond);
    EXPECT_EQ(q.value(), Logic::One);
}

TEST(DFlipFlopTest, AsyncResetClears)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& d = c.logicSignal("d", Logic::One);
    auto& q = c.logicSignal("q", Logic::U);
    auto& qn = c.logicSignal("qn", Logic::U);
    auto& rstn = c.logicSignal("rstn", Logic::One);
    c.add<DFlipFlop>(c, "ff", clk, d, q, &rstn, &qn);
    pulseClock(c, clk, 10 * kNanosecond);
    c.runUntil(12 * kNanosecond);
    EXPECT_EQ(q.value(), Logic::One);
    EXPECT_EQ(qn.value(), Logic::Zero);
    // Reset without any clock edge.
    c.scheduler().scheduleAction(20 * kNanosecond, [&rstn] { rstn.forceValue(Logic::Zero); });
    c.runUntil(22 * kNanosecond);
    EXPECT_EQ(q.value(), Logic::Zero);
    EXPECT_EQ(qn.value(), Logic::One);
}

TEST(DFlipFlopTest, SeuHookFlipsState)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& d = c.logicSignal("d", Logic::Zero);
    auto& q = c.logicSignal("q", Logic::U);
    c.add<DFlipFlop>(c, "ff", clk, d, q);
    pulseClock(c, clk, 10 * kNanosecond);
    c.runUntil(12 * kNanosecond);
    EXPECT_EQ(q.value(), Logic::Zero);

    const StateHook& hook = c.instrumentation().hook("ff");
    EXPECT_EQ(hook.width, 1);
    EXPECT_EQ(hook.get(), 0u);
    c.scheduler().scheduleAction(20 * kNanosecond, [&hook] { hook.flipBit(0); });
    c.runUntil(21 * kNanosecond);
    EXPECT_EQ(q.value(), Logic::One); // SEU visible at the output
    EXPECT_EQ(hook.get(), 1u);
}

TEST(RegisterTest, LoadsAndResets)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& rstn = c.logicSignal("rstn", Logic::One);
    Bus d = c.bus("d", 8, Logic::Zero);
    Bus q = c.bus("q", 8, Logic::U);
    c.add<Register>(c, "reg", clk, d, q, nullptr, &rstn, 0xFF);
    c.scheduler().scheduleAction(kNanosecond, [d] { d.forceUint(0xA5); });
    pulseClock(c, clk, 10 * kNanosecond);
    c.runUntil(12 * kNanosecond);
    EXPECT_EQ(q.toUint(), 0xA5u);
    c.scheduler().scheduleAction(20 * kNanosecond, [&rstn] { rstn.forceValue(Logic::Zero); });
    c.runUntil(22 * kNanosecond);
    EXPECT_EQ(q.toUint(), 0xFFu); // reset value
}

TEST(RegisterTest, EnableGatesLoading)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& en = c.logicSignal("en", Logic::Zero);
    Bus d = c.bus("d", 4, Logic::Zero);
    Bus q = c.bus("q", 4, Logic::U);
    c.add<Register>(c, "reg", clk, d, q, &en);
    c.scheduler().scheduleAction(kNanosecond, [d] { d.forceUint(0x7); });
    pulseClock(c, clk, 10 * kNanosecond);
    c.runUntil(15 * kNanosecond);
    EXPECT_EQ(q.toUint(), 0u); // enable low: no load
    c.scheduler().scheduleAction(18 * kNanosecond, [&en] { en.forceValue(Logic::One); });
    pulseClock(c, clk, 20 * kNanosecond);
    c.runUntil(22 * kNanosecond);
    EXPECT_EQ(q.toUint(), 0x7u);
}

TEST(RegisterTest, SeuBitFlipHook)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    Bus d = c.bus("d", 8, Logic::Zero);
    Bus q = c.bus("q", 8, Logic::U);
    c.add<Register>(c, "reg", clk, d, q);
    pulseClock(c, clk, 10 * kNanosecond);
    c.runUntil(12 * kNanosecond);
    const StateHook& hook = c.instrumentation().hook("reg");
    c.scheduler().scheduleAction(20 * kNanosecond, [&hook] { hook.flipBit(5); });
    c.runUntil(21 * kNanosecond);
    EXPECT_EQ(q.toUint(), 1u << 5);
}

TEST(CounterTest, CountsAndWrapsModulo)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& tc = c.logicSignal("tc", Logic::U);
    Bus q = c.bus("q", 4, Logic::U);
    c.add<Counter>(c, "cnt", clk, q, nullptr, nullptr, /*modulo=*/10, &tc);
    c.add<ClockGen>(c, "clkgen", clk, 10 * kNanosecond);
    c.runUntil(95 * kNanosecond); // 9 rising edges (at 0? gen starts 0 rising)
    // ClockGen first rising edge at t=0, so after 95 ns there were 10 edges
    // (0,10,...,90): count wrapped to 0 and tc pulsed at 9.
    EXPECT_EQ(q.toUint(), 0u);
    c.runUntil(135 * kNanosecond);
    EXPECT_EQ(q.toUint(), 4u);
}

TEST(ClockDividerTest, DividesByN)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& out = c.logicSignal("out", Logic::U);
    c.add<ClockGen>(c, "clkgen", clk, 10 * kNanosecond);
    c.add<ClockDivider>(c, "div", clk, out, 10);
    int rises = 0;
    SignalWatch::onEvent(out, [&] {
        if (toX01(out.value()) == Logic::One) {
            ++rises;
        }
    });
    c.runUntil(fromSeconds(2.001e-6)); // 200 input cycles -> 20 output cycles
    EXPECT_NEAR(rises, 20, 1);
}

TEST(ClockDividerTest, RejectsOddRatio)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& out = c.logicSignal("out", Logic::U);
    EXPECT_THROW(c.add<ClockDivider>(c, "div", clk, out, 7), std::invalid_argument);
}

TEST(ShiftRegisterTest, ShiftsSerialData)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& sin = c.logicSignal("sin", Logic::Zero);
    Bus taps = c.bus("taps", 4, Logic::U);
    auto& sr = c.add<ShiftRegister>(c, "sr", clk, sin, taps);
    // Shift in 1,0,1,1 (LSB-first arrival; new bits enter at the MSB end).
    const Logic bits[] = {Logic::One, Logic::Zero, Logic::One, Logic::One};
    SimTime t = 10 * kNanosecond;
    for (Logic bit : bits) {
        c.scheduler().scheduleAction(t - 2 * kNanosecond,
                                     [&sin, bit] { sin.forceValue(bit); });
        pulseClock(c, clk, t);
        t += 10 * kNanosecond;
    }
    c.runUntil(t);
    // After 4 shifts the register holds (MSB..LSB) = 1,1,0,1 = 0xD.
    EXPECT_EQ(sr.state(), 0xDu);
    EXPECT_EQ(taps.toUint(), 0xDu);
}

TEST(LfsrTest, MaximalLengthSequence)
{
    // x^4 + x^3 + 1 (taps 0xC on a 4-bit register) has period 15.
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    Bus q = c.bus("q", 4, Logic::U);
    auto& lfsr = c.add<Lfsr>(c, "lfsr", clk, q, 0xC, 1);
    c.add<ClockGen>(c, "clkgen", clk, 10 * kNanosecond);
    std::vector<std::uint64_t> seen;
    c.runUntil(kNanosecond);
    const std::uint64_t s0 = lfsr.state();
    for (int i = 0; i < 15; ++i) {
        seen.push_back(lfsr.state());
        c.runUntil(c.scheduler().now() + 10 * kNanosecond);
    }
    // All 15 non-zero states visited exactly once, then the sequence repeats.
    EXPECT_EQ(lfsr.state(), s0);
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
    EXPECT_EQ(seen.size(), 15u);
    EXPECT_EQ(std::count(seen.begin(), seen.end(), 0u), 0); // never the all-zero state
}

TEST(TableFsmTest, FollowsTransitionTable)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& rstn = c.logicSignal("rstn", Logic::One);
    auto& in0 = c.logicSignal("in0", Logic::Zero);
    Bus in{std::vector<LogicSignal*>{&in0}};
    Bus out = c.bus("out", 1, Logic::U);
    // Two-state toggle-on-input machine.
    auto& fsm = c.add<TableFsm>(
        c, "fsm", clk, &rstn, in, out, 2, 0,
        [](int s, std::uint64_t i) { return i != 0 ? 1 - s : s; },
        [](int s, std::uint64_t) { return static_cast<std::uint64_t>(s); });
    pulseClock(c, clk, 10 * kNanosecond);
    c.runUntil(15 * kNanosecond);
    EXPECT_EQ(fsm.state(), 0);
    c.scheduler().scheduleAction(18 * kNanosecond, [&in0] { in0.forceValue(Logic::One); });
    pulseClock(c, clk, 20 * kNanosecond);
    c.runUntil(25 * kNanosecond);
    EXPECT_EQ(fsm.state(), 1);
    EXPECT_EQ(out.toUint(), 1u);
}

TEST(TableFsmTest, ErroneousTransitionInjection)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& in0 = c.logicSignal("in0", Logic::Zero);
    Bus in{std::vector<LogicSignal*>{&in0}};
    Bus out = c.bus("out", 2, Logic::U);
    auto& fsm = c.add<TableFsm>(
        c, "fsm", clk, nullptr, in, out, 4, 0,
        [](int s, std::uint64_t) { return (s + 1) % 4; },
        [](int s, std::uint64_t) { return static_cast<std::uint64_t>(s); });
    pulseClock(c, clk, 10 * kNanosecond);
    c.runUntil(15 * kNanosecond);
    EXPECT_EQ(fsm.state(), 1);
    // Reference [11]: force an erroneous transition at the next edge.
    fsm.corruptNextTransition(3);
    pulseClock(c, clk, 20 * kNanosecond);
    c.runUntil(25 * kNanosecond);
    EXPECT_EQ(fsm.state(), 3);
    // Subsequent edges follow the normal table again.
    pulseClock(c, clk, 30 * kNanosecond);
    c.runUntil(35 * kNanosecond);
    EXPECT_EQ(fsm.state(), 0);
}

TEST(AdderTest, AddsWithCarry)
{
    Circuit c;
    Bus a = c.bus("a", 4, Logic::Zero);
    Bus b = c.bus("b", 4, Logic::Zero);
    Bus sum = c.bus("sum", 4, Logic::U);
    auto& cout = c.logicSignal("cout", Logic::U);
    c.add<Adder>(c, "add", a, b, sum, nullptr, &cout);
    c.scheduler().scheduleAction(kNanosecond, [a, b] {
        a.forceUint(9);
        b.forceUint(8);
    });
    c.runUntil(2 * kNanosecond);
    EXPECT_EQ(sum.toUint(), 1u); // 17 mod 16
    EXPECT_EQ(cout.value(), Logic::One);
}

TEST(AdderTest, UnknownInputYieldsX)
{
    Circuit c;
    Bus a = c.bus("a", 4, Logic::Zero);
    Bus b = c.bus("b", 4, Logic::Zero);
    Bus sum = c.bus("sum", 4, Logic::U);
    c.add<Adder>(c, "add", a, b, sum);
    c.scheduler().scheduleAction(kNanosecond,
                                 [a] { a.bit(2).forceValue(Logic::X); });
    c.runUntil(2 * kNanosecond);
    EXPECT_EQ(sum.bit(0).value(), Logic::X);
}

TEST(EqComparatorTest, ComparesBuses)
{
    Circuit c;
    Bus a = c.bus("a", 8, Logic::Zero);
    Bus b = c.bus("b", 8, Logic::Zero);
    auto& eq = c.logicSignal("eq", Logic::U);
    c.add<EqComparator>(c, "cmp", a, b, eq);
    c.scheduler().scheduleAction(kNanosecond, [a, b] {
        a.forceUint(0x42);
        b.forceUint(0x42);
    });
    c.runUntil(2 * kNanosecond);
    EXPECT_EQ(eq.value(), Logic::One);
    c.scheduler().scheduleAction(3 * kNanosecond, [b] { b.forceUint(0x43); });
    c.runUntil(4 * kNanosecond);
    EXPECT_EQ(eq.value(), Logic::Zero);
}

TEST(BusTest, UintRoundTripAndString)
{
    Circuit c;
    Bus b = c.bus("b", 8, Logic::Zero);
    b.forceUint(0xA5);
    EXPECT_EQ(b.toUint(), 0xA5u);
    EXPECT_EQ(b.str(), "10100101");
    bool known = true;
    b.bit(3).forceValue(Logic::X);
    (void)b.toUint(&known);
    EXPECT_FALSE(known);
}

TEST(InstrumentationTest, RegistryEnumeratesTargets)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& d = c.logicSignal("d", Logic::Zero);
    auto& q1 = c.logicSignal("q1", Logic::U);
    auto& q2 = c.logicSignal("q2", Logic::U);
    Bus db = c.bus("db", 8, Logic::Zero);
    Bus qb = c.bus("qb", 8, Logic::U);
    c.add<DFlipFlop>(c, "ff1", clk, d, q1);
    c.add<DFlipFlop>(c, "ff2", clk, d, q2);
    c.add<Register>(c, "reg", clk, db, qb);
    EXPECT_EQ(c.instrumentation().names().size(), 3u);
    EXPECT_EQ(c.instrumentation().totalBits(), 10);
    EXPECT_TRUE(c.instrumentation().contains("ff1"));
    EXPECT_THROW((void)c.instrumentation().hook("nope"), std::out_of_range);
    EXPECT_THROW(c.add<DFlipFlop>(c, "ff1", clk, d, q1), std::invalid_argument);
}

} // namespace
} // namespace gfi::digital
