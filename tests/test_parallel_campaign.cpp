// Parallel campaign executor: determinism and thread-safety guarantees.
//
// The contract under test: a campaign sharded across N workers produces
// *identical observable output* to the serial run — byte-identical JSONL
// journal, identical per-fault classifications, identical summary/JSON
// reports and an in-order progress-callback sequence — for digital, PLL and
// ADC campaigns, at 1/2/4/8 workers, with retry and preflight enabled, and
// across mid-campaign journal resume. Plus regression coverage for the
// thread-safety of CampaignJournal::append and the runner's live counters
// (hammered from 8 threads; run these under GFI_SANITIZE=thread in CI).

#include "adc/sar.hpp"
#include "analog/passive.hpp"
#include "analog/sources.hpp"
#include "core/campaign.hpp"
#include "core/executor.hpp"
#include "core/faultlist.hpp"
#include "core/journal.hpp"
#include "core/report.hpp"
#include "core/stats.hpp"
#include "duts/digital_dut.hpp"
#include "pll/pll.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <thread>

namespace gfi::campaign {
namespace {

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// ---------------------------------------------------------------------------
// core::Executor

TEST(Executor, CommitsInIndexOrderAtAnyWidth)
{
    for (unsigned workers : {2u, 4u, 8u}) {
        core::Executor exec(workers);
        std::vector<std::size_t> committed;
        const std::size_t done = exec.forEachOrdered(64, [&](std::size_t i) {
            // Uneven per-job cost so completion order scrambles.
            volatile std::uint64_t sink = 0;
            for (std::size_t k = 0; k < (i % 7) * 10'000; ++k) {
                sink = sink + 1;
            }
            return [&committed, i] { committed.push_back(i); };
        });
        EXPECT_EQ(done, 64u);
        std::vector<std::size_t> expected(64);
        std::iota(expected.begin(), expected.end(), 0u);
        EXPECT_EQ(committed, expected) << "out-of-order commits at " << workers << " workers";
        committed.clear();
    }
}

TEST(Executor, SingleWorkerRunsInlineOnCallingThread)
{
    core::Executor exec(1);
    const std::thread::id caller = std::this_thread::get_id();
    bool inline_ = true;
    exec.forEachOrdered(8, [&](std::size_t) {
        inline_ = inline_ && std::this_thread::get_id() == caller;
        return core::CommitFn{};
    });
    EXPECT_TRUE(inline_);
    EXPECT_EQ(exec.forEachOrdered(0, [](std::size_t) { return core::CommitFn{}; }), 0u);
}

TEST(Executor, DefaultWorkersHonorsGfiJobsEnv)
{
    ::setenv("GFI_JOBS", "3", 1);
    EXPECT_EQ(core::Executor::defaultWorkers(), 3u);
    ::setenv("GFI_JOBS", "not-a-number", 1);
    EXPECT_GE(core::Executor::defaultWorkers(), 1u);
    ::setenv("GFI_JOBS", "0", 1);
    EXPECT_GE(core::Executor::defaultWorkers(), 1u);
    ::unsetenv("GFI_JOBS");
    EXPECT_GE(core::Executor::defaultWorkers(), 1u);
}

TEST(Executor, ProduceFailureRethrowsWithCleanCommittedPrefix)
{
    core::Executor exec(4);
    std::vector<std::size_t> committed;
    EXPECT_THROW(exec.forEachOrdered(32,
                                     [&](std::size_t i) -> core::CommitFn {
                                         if (i == 10) {
                                             throw std::runtime_error("job 10 exploded");
                                         }
                                         return [&committed, i] { committed.push_back(i); };
                                     }),
                 std::runtime_error);
    // Indices are handed out in order, so every job before the failed one was
    // produced and must have committed; nothing at or past the gap may.
    std::vector<std::size_t> expected(10);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(committed, expected);
}

TEST(Executor, CommitFailureRethrowsAndStopsCommitting)
{
    core::Executor exec(4);
    std::vector<std::size_t> committed;
    EXPECT_THROW(exec.forEachOrdered(32,
                                     [&](std::size_t i) -> core::CommitFn {
                                         return [&committed, i] {
                                             if (i == 5) {
                                                 throw std::runtime_error("commit 5 failed");
                                             }
                                             committed.push_back(i);
                                         };
                                     }),
                 std::runtime_error);
    std::vector<std::size_t> expected(5);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(committed, expected);
}

TEST(Executor, CancelDrainsInFlightWorkIntoCleanPrefix)
{
    core::Executor exec(4);
    std::vector<std::size_t> committed;
    const std::size_t done = exec.forEachOrdered(256, [&](std::size_t i) -> core::CommitFn {
        return [&, i] {
            if (i == 3) {
                exec.requestCancel();
            }
            committed.push_back(i);
        };
    });
    ASSERT_EQ(done, committed.size());
    EXPECT_GE(done, 4u);     // the cancelling commit itself still lands
    EXPECT_LT(done, 256u);   // bounded window: the tail was never fetched
    for (std::size_t i = 0; i < committed.size(); ++i) {
        EXPECT_EQ(committed[i], i); // contiguous prefix, in order
    }
}

TEST(Executor, BoundedCommitWindowStillCompletes)
{
    core::Executor exec(8);
    exec.setCommitWindow(2); // aggressive backpressure
    std::vector<std::size_t> committed;
    EXPECT_EQ(exec.forEachOrdered(64,
                                  [&](std::size_t i) -> core::CommitFn {
                                      return [&committed, i] { committed.push_back(i); };
                                  }),
              64u);
    EXPECT_EQ(committed.size(), 64u);
}

// ---------------------------------------------------------------------------
// Watchdog budgets under parallelism

TEST(Watchdog, ScaledForStretchesOnlyOversubscribedWallClock)
{
    WatchdogConfig base;
    base.wallClockSeconds = 1.0;
    base.digitalWaves = 5'000;
    base.analogSteps = 7'000;
    const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

    const WatchdogConfig same = base.scaledFor(1);
    EXPECT_DOUBLE_EQ(same.wallClockSeconds, 1.0);

    const WatchdogConfig wide = base.scaledFor(cores * 4);
    EXPECT_DOUBLE_EQ(wide.wallClockSeconds, 4.0);
    // Deterministic simulated-work budgets never scale.
    EXPECT_EQ(wide.digitalWaves, base.digitalWaves);
    EXPECT_EQ(wide.analogSteps, base.analogSteps);

    WatchdogConfig unlimited;
    EXPECT_DOUBLE_EQ(unlimited.scaledFor(cores * 4).wallClockSeconds, 0.0);
}

// ---------------------------------------------------------------------------
// Parallel == serial equivalence

struct CampaignOutput {
    std::string journal; ///< raw JSONL bytes
    std::string summary;
    std::string json;
    CampaignReport report;
};

CampaignOutput runAt(const fault::TestbenchFactory& factory,
                     const std::function<void(CampaignRunner&)>& configure,
                     const std::vector<fault::FaultSpec>& faults, unsigned workers,
                     const std::string& tag)
{
    const std::string path = ::testing::TempDir() + "gfi_parallel_" + tag + "_" +
                             std::to_string(workers) + ".jsonl";
    std::remove(path.c_str());
    CampaignRunner runner(factory);
    runner.setWorkers(workers);
    runner.setRecordTiming(false); // wall clock is the only nondeterministic field
    runner.setJournalPath(path);
    if (configure) {
        configure(runner);
    }
    CampaignOutput out;
    out.report = runner.run(faults);
    out.journal = slurp(path);
    out.summary = out.report.summaryTable();
    out.json = reportToJson(out.report);
    std::remove(path.c_str());
    return out;
}

void expectParallelEqualsSerial(const fault::TestbenchFactory& factory,
                                const std::function<void(CampaignRunner&)>& configure,
                                const std::vector<fault::FaultSpec>& faults,
                                const std::string& tag)
{
    const CampaignOutput serial = runAt(factory, configure, faults, 1, tag);
    ASSERT_EQ(serial.report.runs.size(), faults.size());
    EXPECT_FALSE(serial.journal.empty());
    for (unsigned workers : {2u, 4u, 8u}) {
        const CampaignOutput parallel = runAt(factory, configure, faults, workers, tag);
        EXPECT_EQ(parallel.journal, serial.journal)
            << tag << ": journal not byte-identical at " << workers << " workers";
        EXPECT_EQ(parallel.summary, serial.summary)
            << tag << ": summary differs at " << workers << " workers";
        EXPECT_EQ(parallel.json, serial.json)
            << tag << ": JSON report differs at " << workers << " workers";
        ASSERT_EQ(parallel.report.runs.size(), serial.report.runs.size());
        for (std::size_t i = 0; i < serial.report.runs.size(); ++i) {
            EXPECT_EQ(parallel.report.runs[i].outcome, serial.report.runs[i].outcome)
                << tag << ": fault " << i << " reclassified at " << workers << " workers";
            EXPECT_EQ(parallel.report.runs[i].erredSignals, serial.report.runs[i].erredSignals);
            EXPECT_EQ(parallel.report.runs[i].diagnostics.attempts,
                      serial.report.runs[i].diagnostics.attempts);
        }
    }
}

TEST(ParallelCampaign, DigitalDutEquivalence)
{
    const auto factory = [] { return std::make_unique<duts::DigitalDutTestbench>(); };
    // Bit-flips on sequential elements plus SET/stuck-at saboteur faults —
    // the paper's Figure 2 fault population in miniature.
    std::vector<fault::FaultSpec> faults{fault::FaultSpec{}};
    const duts::DigitalDutTestbench probe;
    const auto& registry = probe.sim().digital().instrumentation();
    const SimTime t = 2 * kMicrosecond + 7 * kNanosecond;
    for (const auto& [name, hook] : registry.all()) {
        faults.emplace_back(fault::BitFlipFault{name, 0, t});
        if (hook.width > 1) {
            faults.emplace_back(fault::BitFlipFault{name, hook.width - 1, t + 40 * kNanosecond});
        }
    }
    for (const std::string& sab : probe.digitalSaboteurNames()) {
        faults.emplace_back(fault::DigitalPulseFault{sab, t, 25 * kNanosecond});
        faults.emplace_back(fault::StuckAtFault{sab, digital::Logic::One, t, 0});
    }
    ASSERT_GE(faults.size(), 10u);
    expectParallelEqualsSerial(
        factory,
        [](CampaignRunner& r) {
            r.setRetryPolicy(RetryPolicy{.maxAttempts = 2});
            ASSERT_TRUE(r.preflightEnabled());
        },
        faults, "digital");
}

TEST(ParallelCampaign, PllEquivalence)
{
    pll::PllConfig cfg;
    cfg.duration = 20 * kMicrosecond; // enough loop activity, cheap per run
    const auto factory = [cfg] { return std::make_unique<pll::PllTestbench>(cfg); };
    auto pulse = std::make_shared<fault::TrapezoidPulse>(2e-3, 300e-12, 300e-12, 1e-9);
    const pll::PllTestbench probe(cfg);
    const std::string reg = probe.sim().digital().instrumentation().names().front();
    const std::vector<fault::FaultSpec> faults{
        fault::FaultSpec{},
        fault::CurrentPulseFault{pll::names::kSabFilter, 8e-6, pulse},
        fault::CurrentPulseFault{pll::names::kSabVcoOut, 12e-6, pulse},
        fault::BitFlipFault{reg, 0, 10 * kMicrosecond},
        fault::ParametricFault{"pll/kvco", 1.15, 5 * kMicrosecond},
    };
    expectParallelEqualsSerial(
        factory, [](CampaignRunner& r) { r.setRetryPolicy(RetryPolicy{.maxAttempts = 2}); },
        faults, "pll");
}

TEST(ParallelCampaign, AdcEquivalence)
{
    adc::SarConfig cfg;
    cfg.inputLevels = {1.7, 2.9}; // two conversions keep the run short
    const auto factory = [cfg] { return std::make_unique<adc::SarAdcTestbench>(cfg); };
    auto pulse = std::make_shared<fault::TrapezoidPulse>(5e-3, 500e-12, 500e-12, 1e-9);
    const adc::SarAdcTestbench probe(cfg);
    std::vector<fault::FaultSpec> faults{fault::FaultSpec{}};
    const auto names = probe.sim().digital().instrumentation().names();
    for (std::size_t i = 0; i < names.size() && i < 4; ++i) {
        faults.emplace_back(fault::BitFlipFault{names[i], 0, 12 * kMicrosecond});
    }
    faults.emplace_back(fault::CurrentPulseFault{"sab/dac_out", 14e-6, pulse});
    faults.emplace_back(fault::CurrentPulseFault{"sab/vin", 3e-6, pulse});
    expectParallelEqualsSerial(
        factory, [](CampaignRunner& r) { r.setRetryPolicy(RetryPolicy{.maxAttempts = 2}); },
        faults, "adc");
}

// Abnormal outcomes (Diverged / SimError / Timeout) and retries must also be
// deterministic across worker counts: every attempt runs on a fresh bench
// with deterministic budgets (wave counts, not wall clock).
TEST(ParallelCampaign, AbnormalOutcomesAndRetriesEquivalence)
{
    const auto factory = [] {
        auto tb = std::make_unique<fault::Testbench>();
        auto& ana = tb->sim().analog();
        auto& dig = tb->sim().digital();
        const analog::NodeId n1 = ana.node("n1");
        auto& src = ana.add<analog::CurrentSource>(ana, "src", n1, analog::kGround, 1e-3);
        ana.add<analog::Resistor>(ana, "r1", n1, analog::kGround, 1e3);
        tb->observeAnalog("n1");
        tb->addParameter("src/amps", [&src](double f) { src.setLevel(1e-3 * f); });

        auto& en = dig.logicSignal("osc/en", digital::Logic::Zero);
        auto& loop = dig.logicSignal("osc/loop", digital::Logic::Zero);
        dig.process(
            "osc/proc",
            [&en, &loop] {
                if (en.value() == digital::Logic::One) {
                    loop.scheduleInertial(digital::logicNot(loop.value()), 0);
                }
            },
            {&en, &loop});
        tb->addParameter("osc/en", [&en](double) { en.forceValue(digital::Logic::One); });
        dig.scheduler().setDeltaLimit(5'000);
        tb->setDuration(100 * kNanosecond);
        return tb;
    };
    const std::vector<fault::FaultSpec> faults{
        fault::FaultSpec{},
        fault::ParametricFault{"src/amps", std::nan(""), 0},      // Diverged (retried)
        fault::ParametricFault{"osc/en", 1.0, 10 * kNanosecond},  // SimError
        fault::ParametricFault{"src/amps", 2.0, 0},               // clean deviation
    };
    expectParallelEqualsSerial(
        factory,
        [](CampaignRunner& r) {
            r.setRetryPolicy(RetryPolicy{.maxAttempts = 2, .stepTighten = 0.25});
        },
        faults, "abnormal");
}

// ---------------------------------------------------------------------------
// Randomized stress: seeded fault lists, random widths, mid-campaign resume

TEST(ParallelCampaign, RandomizedResumeMatchesSerialExactly)
{
    Rng rng(0xC0FFEE);
    const duts::DigitalDutTestbench probe;
    for (int trial = 0; trial < 3; ++trial) {
        const auto faults = fault::randomBitFlips(
            probe, 10, {kMicrosecond, 3 * kMicrosecond}, rng);
        ASSERT_EQ(faults.size(), 10u);
        const std::string tag = "resume" + std::to_string(trial);

        // Serial reference for the full list.
        const auto factory = [] { return std::make_unique<duts::DigitalDutTestbench>(); };
        const CampaignOutput reference = runAt(factory, {}, faults, 1, tag + "_ref");

        // Phase 1: a "killed" campaign journals only the first k faults.
        const std::size_t k = 1 + rng.below(8);
        const std::string path =
            ::testing::TempDir() + "gfi_parallel_resume_" + std::to_string(trial) + ".jsonl";
        std::remove(path.c_str());
        {
            CampaignRunner partial(factory);
            partial.setRecordTiming(false);
            partial.setJournalPath(path);
            (void)partial.run({faults.begin(), faults.begin() + static_cast<long>(k)});
        }

        // Phase 2: parallel resume of the full list at a random width.
        const unsigned workers = 2 + static_cast<unsigned>(rng.below(7));
        auto builds = std::make_shared<std::atomic<int>>(0);
        CampaignRunner resumed([builds] {
            builds->fetch_add(1, std::memory_order_relaxed);
            return std::make_unique<duts::DigitalDutTestbench>();
        });
        resumed.setRecordTiming(false);
        resumed.setWorkers(workers);
        resumed.setJournalPath(path);
        const CampaignReport report = resumed.run(faults);

        // Restored entries were skipped exactly like a serial resume...
        EXPECT_EQ(builds->load(), 1 + static_cast<int>(faults.size() - k))
            << "trial " << trial << ": resumed parallel campaign re-simulated "
            << "journaled faults at " << workers << " workers";
        for (std::size_t i = 0; i < faults.size(); ++i) {
            EXPECT_EQ(report.runs[i].diagnostics.fromJournal, i < k);
            EXPECT_EQ(report.runs[i].outcome, reference.report.runs[i].outcome);
        }
        // ... and the journal converged to the exact serial bytes.
        EXPECT_EQ(slurp(path), reference.journal) << "trial " << trial;
        std::remove(path.c_str());
    }
}

// ---------------------------------------------------------------------------
// Thread-safety regressions (run under TSan in CI)

TEST(ParallelCampaign, JournalAppendIsThreadSafeUnderHammering)
{
    const std::string path = ::testing::TempDir() + "gfi_journal_hammer.jsonl";
    std::remove(path.c_str());
    constexpr int kThreads = 8;
    constexpr int kPerThread = 200;
    {
        CampaignJournal journal(path);
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&journal, t] {
                for (int i = 0; i < kPerThread; ++i) {
                    RunResult r;
                    r.fault = fault::BitFlipFault{"hammer/reg", t, i * kNanosecond};
                    r.outcome = (i % 2) == 0 ? Outcome::Silent : Outcome::Failure;
                    r.erredSignals = {"out[" + std::to_string(t) + "]"};
                    journal.append(static_cast<std::size_t>(t * kPerThread + i), r);
                }
            });
        }
        for (std::thread& th : threads) {
            th.join();
        }
    }
    // Every line must be whole: a torn interleaving would fail to parse and
    // silently drop checkpoints on resume.
    const auto entries = CampaignJournal::load(path);
    EXPECT_EQ(entries.size(), static_cast<std::size_t>(kThreads * kPerThread));
    std::remove(path.c_str());
}

TEST(ParallelCampaign, OutcomeTallyIsThreadSafeUnderHammering)
{
    OutcomeTally tally;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 5'000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&tally] {
            for (int i = 0; i < kPerThread; ++i) {
                tally.add((i % 3) == 0 ? Outcome::Failure : Outcome::Silent);
            }
        });
    }
    for (std::thread& th : threads) {
        th.join();
    }
    EXPECT_EQ(tally.total(), kThreads * kPerThread);
    const auto snap = tally.snapshot();
    int sum = 0;
    for (const auto& [outcome, n] : snap) {
        sum += n;
    }
    EXPECT_EQ(sum, kThreads * kPerThread);
}

TEST(ParallelCampaign, LiveCountersMatchReportAndSurvivePolling)
{
    CampaignRunner runner([] { return std::make_unique<duts::DigitalDutTestbench>(); });
    runner.setWorkers(4);
    std::vector<fault::FaultSpec> faults;
    const SimTime t = 2 * kMicrosecond;
    for (int bit = 0; bit < 6; ++bit) {
        faults.emplace_back(fault::BitFlipFault{"dut/cnt", bit, t});
    }

    // Poll the live counters from an outside thread while the campaign runs —
    // exactly what a progress monitor does; TSan validates the locking.
    std::atomic<bool> done{false};
    std::thread monitor([&] {
        std::size_t last = 0;
        while (!done.load(std::memory_order_relaxed)) {
            const std::size_t now = runner.completedRuns();
            EXPECT_GE(now, last); // monotone within one campaign
            last = now;
            (void)runner.liveHistogram();
        }
    });
    const CampaignReport report = runner.run(faults);
    done.store(true, std::memory_order_relaxed);
    monitor.join();

    EXPECT_EQ(runner.completedRuns(), faults.size());
    EXPECT_EQ(runner.liveHistogram(), report.histogram());
}

TEST(ParallelCampaign, ProgressCallbackIsOrderedAndSerialized)
{
    CampaignRunner runner([] { return std::make_unique<duts::DigitalDutTestbench>(); });
    runner.setWorkers(8);
    std::vector<fault::FaultSpec> faults;
    for (int bit = 0; bit < 8; ++bit) {
        faults.emplace_back(fault::BitFlipFault{"dut/out_reg", bit, 2 * kMicrosecond});
    }
    std::vector<std::size_t> order; // unsynchronized on purpose: the runner
                                    // guarantees serialized, in-order calls
    (void)runner.run(faults, [&order](std::size_t i, const RunResult&) {
        order.push_back(i);
    });
    std::vector<std::size_t> expected(faults.size());
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(order, expected);
}

} // namespace
} // namespace gfi::campaign
