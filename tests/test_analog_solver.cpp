// Transient-solver validation against closed-form circuit solutions: DC
// dividers, RC step response, RL current rise, RLC resonance, nonlinear
// components and crossing-monitor accuracy.

#include "analog/controlled.hpp"
#include "analog/passive.hpp"
#include "analog/solver.hpp"
#include "analog/sources.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gfi::analog {
namespace {

TEST(AnalogDc, VoltageDivider)
{
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId mid = sys.node("mid");
    sys.add<VoltageSource>(sys, "V1", in, kGround, 10.0);
    sys.add<Resistor>(sys, "R1", in, mid, 1e3);
    sys.add<Resistor>(sys, "R2", mid, kGround, 3e3);
    TransientSolver solver(sys);
    solver.solveDc();
    // gmin (1e-12 S per node) perturbs the ideal value at the 1e-8 level.
    EXPECT_NEAR(sys.voltage(mid), 7.5, 1e-6);
    EXPECT_NEAR(sys.voltage(in), 10.0, 1e-6);
}

TEST(AnalogDc, CurrentSourceIntoResistor)
{
    AnalogSystem sys;
    const NodeId n = sys.node("n");
    sys.add<CurrentSource>(sys, "I1", n, kGround, 2e-3); // 2 mA into n
    sys.add<Resistor>(sys, "R1", n, kGround, 1e3);
    TransientSolver solver(sys);
    solver.solveDc();
    EXPECT_NEAR(sys.voltage(n), 2.0, 1e-6);
}

TEST(AnalogDc, VoltageSourceBranchCurrent)
{
    AnalogSystem sys;
    const NodeId n = sys.node("n");
    auto& v1 = sys.add<VoltageSource>(sys, "V1", n, kGround, 5.0);
    sys.add<Resistor>(sys, "R1", n, kGround, 5.0);
    TransientSolver solver(sys);
    solver.solveDc();
    const Solution sol(sys.state(), sys.nodeCount());
    // SPICE passive-sign convention: a source delivering power carries a
    // negative branch current (1 A flows out of the + terminal into R1).
    EXPECT_NEAR(v1.current(sol), -1.0, 1e-6);
}

TEST(AnalogTransient, RcChargingMatchesAnalytic)
{
    // 1 kOhm / 1 nF driven by a 5 V step at t=0 (source starts at 5 V, cap at 0).
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId out = sys.node("out");
    auto& vs = sys.add<VoltageSource>(sys, "V1", in, kGround, 0.0);
    sys.add<Resistor>(sys, "R1", in, out, 1e3);
    sys.add<Capacitor>(sys, "C1", out, kGround, 1e-9);

    // Step from 0 to 5 V at 100 ns via a pulse edge of 1 ps.
    TimeFunction fn;
    fn.value = [](double t) {
        if (t < 100e-9) {
            return 0.0;
        }
        if (t < 100e-9 + 1e-12) {
            return 5.0 * (t - 100e-9) / 1e-12;
        }
        return 5.0;
    };
    fn.breakpoints = {100e-9, 100e-9 + 1e-12};
    vs.setFunction(std::move(fn));

    TransientSolver solver(sys);
    solver.solveDc();
    const double tau = 1e3 * 1e-9;

    for (double dtAfter : {0.5 * tau, 1.0 * tau, 2.0 * tau, 5.0 * tau}) {
        const double target = 100e-9 + dtAfter;
        solver.advanceTo(target);
        const double expected = 5.0 * (1.0 - std::exp(-dtAfter / tau));
        EXPECT_NEAR(sys.voltage(out), expected, 0.01) << "t-100ns = " << dtAfter;
    }
}

TEST(AnalogTransient, RcDischargeFromDcOperatingPoint)
{
    // Cap charged to 5 V at DC through R, then source drops to 0 at 1 us.
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId out = sys.node("out");
    auto& vs = sys.add<VoltageSource>(sys, "V1", in, kGround, 5.0);
    sys.add<Resistor>(sys, "R1", in, out, 10e3);
    sys.add<Capacitor>(sys, "C1", out, kGround, 100e-12);

    TimeFunction fn;
    fn.value = [](double t) { return t < 1e-6 ? 5.0 : 0.0; };
    fn.breakpoints = {1e-6};
    vs.setFunction(std::move(fn));

    TransientSolver solver(sys);
    solver.solveDc();
    EXPECT_NEAR(sys.voltage(out), 5.0, 1e-6); // DC: no current, cap at 5 V

    const double tau = 10e3 * 100e-12;
    solver.advanceTo(1e-6 + 2.0 * tau);
    EXPECT_NEAR(sys.voltage(out), 5.0 * std::exp(-2.0), 0.02);
}

TEST(AnalogTransient, RlCurrentRise)
{
    // Series R-L driven by a DC source from a zero-current initial state:
    // i(t) = (V/R)(1 - exp(-tR/L)), measured via the node between R and L.
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId mid = sys.node("mid");
    sys.add<VoltageSource>(sys, "V1", in, kGround, 1.0);
    sys.add<Resistor>(sys, "R1", in, mid, 100.0);
    sys.add<Inductor>(sys, "L1", mid, kGround, 1e-6);

    TransientSolver solver(sys);
    // Skip the DC pass (it would start at steady state); integrate from zero.
    const double tau = 1e-6 / 100.0;
    solver.advanceTo(3.0 * tau);
    // v(mid) = V * exp(-t/tau) decays as the inductor current builds.
    EXPECT_NEAR(sys.voltage(mid), 1.0 * std::exp(-3.0), 0.01);
}

TEST(AnalogTransient, RlcResonantRingdownFrequency)
{
    // Underdamped series RLC: check the ringing period of the cap voltage.
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId n1 = sys.node("n1");
    const NodeId n2 = sys.node("n2");
    auto& vs = sys.add<VoltageSource>(sys, "V1", in, kGround, 0.0);
    sys.add<Resistor>(sys, "R1", in, n1, 10.0);
    sys.add<Inductor>(sys, "L1", n1, n2, 10e-6);
    sys.add<Capacitor>(sys, "C1", n2, kGround, 10e-9);

    TimeFunction fn;
    fn.value = [](double t) { return t < 1e-7 ? 0.0 : 1.0; };
    fn.breakpoints = {1e-7};
    vs.setFunction(std::move(fn));

    SolverOptions opt;
    opt.lteRelTol = 1e-4;
    TransientSolver solver(sys, opt);
    solver.solveDc();

    // Track maxima of v(n2) by sampling.
    std::vector<std::pair<double, double>> samples;
    solver.onAccept([&](double t) { samples.emplace_back(t, sys.voltage(n2)); });
    solver.advanceTo(6e-6);

    // Find the first two local maxima after the step.
    std::vector<double> peaks;
    for (std::size_t i = 1; i + 1 < samples.size(); ++i) {
        if (samples[i].second > samples[i - 1].second &&
            samples[i].second >= samples[i + 1].second && samples[i].first > 1e-7) {
            peaks.push_back(samples[i].first);
            if (peaks.size() == 2) {
                break;
            }
        }
    }
    ASSERT_EQ(peaks.size(), 2u);
    const double measured = peaks[1] - peaks[0];
    const double w0 = 1.0 / std::sqrt(10e-6 * 10e-9);
    const double alpha = 10.0 / (2.0 * 10e-6);
    const double wd = std::sqrt(w0 * w0 - alpha * alpha);
    EXPECT_NEAR(measured, 2.0 * M_PI / wd, 0.05 * 2.0 * M_PI / wd);
}

TEST(AnalogTransient, CrossingMonitorLocatesRampCrossing)
{
    // A 0->5 V ramp over 1 us crosses 2.5 V at exactly 0.5 us.
    AnalogSystem sys;
    const NodeId n = sys.node("n");
    auto& vs = sys.add<VoltageSource>(sys, "V1", n, kGround, 0.0);
    sys.add<Resistor>(sys, "Rload", n, kGround, 1e6);
    TimeFunction fn;
    fn.value = [](double t) { return t < 1e-6 ? 5.0 * t / 1e-6 : 5.0; };
    fn.breakpoints = {1e-6};
    vs.setFunction(std::move(fn));

    TransientSolver solver(sys);
    double tCross = -1.0;
    bool wasRising = false;
    solver.addMonitor(n, 2.5, CrossingMonitor::Edge::Rising, [&](double t, bool rising) {
        tCross = t;
        wasRising = rising;
    });
    const double reached = solver.advanceTo(2e-6);
    EXPECT_LT(reached, 2e-6); // stopped early at the crossing
    EXPECT_TRUE(wasRising);
    EXPECT_NEAR(tCross, 0.5e-6, 1e-11);
    // Resuming continues past the crossing without retriggering.
    EXPECT_NEAR(solver.advanceTo(2e-6), 2e-6, 1e-15);
}

TEST(AnalogTransient, FallingCrossingDetected)
{
    AnalogSystem sys;
    const NodeId n = sys.node("n");
    auto& vs = sys.add<VoltageSource>(sys, "V1", n, kGround, 5.0);
    sys.add<Resistor>(sys, "Rload", n, kGround, 1e6);
    TimeFunction fn;
    fn.value = [](double t) { return t < 1e-6 ? 5.0 - 5.0 * t / 1e-6 : 0.0; };
    fn.breakpoints = {1e-6};
    vs.setFunction(std::move(fn));

    TransientSolver solver(sys);
    double tCross = -1.0;
    solver.addMonitor(n, 1.0, CrossingMonitor::Edge::Falling,
                      [&](double t, bool) { tCross = t; });
    solver.advanceTo(2e-6);
    EXPECT_NEAR(tCross, 0.8e-6, 1e-11);
}

TEST(AnalogNonlinear, DiodeForwardDrop)
{
    // 5 V through 1 kOhm into a diode: V_diode settles near 0.6-0.75 V and
    // satisfies i = Is(exp(v/vt)-1) = (5 - v)/R.
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId d = sys.node("d");
    sys.add<VoltageSource>(sys, "V1", in, kGround, 5.0);
    sys.add<Resistor>(sys, "R1", in, d, 1e3);
    sys.add<Diode>(sys, "D1", d, kGround);
    TransientSolver solver(sys);
    solver.solveDc();
    const double v = sys.voltage(d);
    EXPECT_GT(v, 0.5);
    EXPECT_LT(v, 0.9);
    const double iR = (5.0 - v) / 1e3;
    const double iD = 1e-14 * (std::exp(v / 0.02585) - 1.0);
    EXPECT_NEAR(iR, iD, 1e-6 + 0.01 * iR);
}

TEST(AnalogNonlinear, SaturatingVcvsClamps)
{
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId out = sys.node("out");
    sys.add<VoltageSource>(sys, "V1", in, kGround, 1.0);
    sys.add<SaturatingVcvs>(sys, "A1", out, kGround, in, kGround, 1e5, 2.5, 2.5);
    sys.add<Resistor>(sys, "Rload", out, kGround, 1e4);
    TransientSolver solver(sys);
    solver.solveDc();
    EXPECT_NEAR(sys.voltage(out), 5.0, 1e-3); // railed high at mid+swing
}

TEST(AnalogNonlinear, SaturatingVcvsLinearRegion)
{
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId out = sys.node("out");
    sys.add<VoltageSource>(sys, "V1", in, kGround, 1e-6);
    sys.add<SaturatingVcvs>(sys, "A1", out, kGround, in, kGround, 1e5, 2.5, 2.5);
    sys.add<Resistor>(sys, "Rload", out, kGround, 1e4);
    TransientSolver solver(sys);
    solver.solveDc();
    // gain * 1 uV = 0.1 V above the 2.5 V midpoint.
    EXPECT_NEAR(sys.voltage(out), 2.6, 2e-3);
}

TEST(AnalogControlled, VccsAndVcvs)
{
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId o1 = sys.node("o1");
    const NodeId o2 = sys.node("o2");
    sys.add<VoltageSource>(sys, "V1", in, kGround, 2.0);
    sys.add<Vccs>(sys, "G1", kGround, o1, in, kGround, 1e-3); // 2 mA into o1
    sys.add<Resistor>(sys, "R1", o1, kGround, 1e3);
    sys.add<Vcvs>(sys, "E1", o2, kGround, o1, kGround, 3.0);
    sys.add<Resistor>(sys, "R2", o2, kGround, 1e3);
    TransientSolver solver(sys);
    solver.solveDc();
    EXPECT_NEAR(sys.voltage(o1), 2.0, 1e-6);
    EXPECT_NEAR(sys.voltage(o2), 6.0, 1e-6);
}

TEST(AnalogTransient, SwitchConducts)
{
    AnalogSystem sys;
    const NodeId ctrl = sys.node("ctrl");
    const NodeId n = sys.node("n");
    const NodeId supply = sys.node("supply");
    sys.add<VoltageSource>(sys, "Vsup", supply, kGround, 5.0);
    auto& vctrl = sys.add<VoltageSource>(sys, "Vctrl", ctrl, kGround, 0.0);
    sys.add<Switch>(sys, "S1", supply, n, ctrl, kGround, 0.5, 1.0, 1e9);
    sys.add<Resistor>(sys, "R1", n, kGround, 1e3);
    TransientSolver solver(sys);
    solver.solveDc();
    EXPECT_LT(sys.voltage(n), 0.01); // switch open

    vctrl.setLevel(1.0);
    solver.markDiscontinuity();
    solver.advanceTo(1e-6);
    EXPECT_NEAR(sys.voltage(n), 5.0 * 1e3 / 1001.0, 0.01); // switch closed
}

TEST(AnalogTransient, PulseVoltageShape)
{
    AnalogSystem sys;
    const NodeId n = sys.node("n");
    sys.add<PulseVoltage>(sys, "Vp", n, kGround, 0.0, 3.0,
                          /*delay=*/1e-6, /*rise=*/1e-7, /*width=*/5e-7, /*fall=*/1e-7);
    sys.add<Resistor>(sys, "R1", n, kGround, 1e3);
    TransientSolver solver(sys);
    solver.solveDc();
    solver.advanceTo(0.5e-6);
    EXPECT_NEAR(sys.voltage(n), 0.0, 1e-6);
    solver.advanceTo(1.05e-6); // mid-rise
    EXPECT_NEAR(sys.voltage(n), 1.5, 0.02);
    solver.advanceTo(1.3e-6); // plateau
    EXPECT_NEAR(sys.voltage(n), 3.0, 1e-3);
    solver.advanceTo(2.0e-6); // after fall
    EXPECT_NEAR(sys.voltage(n), 0.0, 1e-3);
}

TEST(AnalogTransient, StatsAccumulate)
{
    AnalogSystem sys;
    const NodeId n = sys.node("n");
    sys.add<SineVoltage>(sys, "Vs", n, kGround, 0.0, 1.0, 1e6);
    sys.add<Resistor>(sys, "R1", n, kGround, 1e3);
    TransientSolver solver(sys);
    solver.solveDc();
    solver.advanceTo(5e-6);
    EXPECT_GT(solver.stats().acceptedSteps, 10u);
    EXPECT_GT(solver.stats().linearSolves, solver.stats().acceptedSteps);
}

} // namespace
} // namespace gfi::analog
