// Unit tests for the event-driven kernel: ordering, delta cycles, inertial vs
// transport delay, edges and process wake-up semantics.

#include "digital/circuit.hpp"
#include "digital/gates.hpp"

#include <gtest/gtest.h>

namespace gfi::digital {
namespace {

TEST(Scheduler, TimeAdvancesToRunUntilTarget)
{
    Circuit c;
    c.runUntil(5 * kNanosecond);
    EXPECT_EQ(c.scheduler().now(), 5 * kNanosecond);
}

TEST(Scheduler, ActionsRunInTimeOrder)
{
    Circuit c;
    std::vector<int> order;
    c.scheduler().scheduleAction(3 * kNanosecond, [&] { order.push_back(3); });
    c.scheduler().scheduleAction(1 * kNanosecond, [&] { order.push_back(1); });
    c.scheduler().scheduleAction(2 * kNanosecond, [&] { order.push_back(2); });
    c.runUntil(10 * kNanosecond);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, SameTimeActionsRunInScheduleOrder)
{
    Circuit c;
    std::vector<int> order;
    c.scheduler().scheduleAction(kNanosecond, [&] { order.push_back(1); });
    c.scheduler().scheduleAction(kNanosecond, [&] { order.push_back(2); });
    c.runUntil(2 * kNanosecond);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, SignalScheduleAppliesAfterDelay)
{
    Circuit c;
    auto& s = c.logicSignal("s", Logic::Zero);
    c.scheduler().scheduleAction(0, [&] { s.scheduleInertial(Logic::One, 5 * kNanosecond); });
    c.runUntil(4 * kNanosecond);
    EXPECT_EQ(s.value(), Logic::Zero);
    c.runUntil(5 * kNanosecond);
    EXPECT_EQ(s.value(), Logic::One);
    EXPECT_EQ(s.lastEventTime(), 5 * kNanosecond);
}

TEST(Scheduler, InertialCancelsPendingTransactions)
{
    Circuit c;
    auto& s = c.logicSignal("s", Logic::Zero);
    c.scheduler().scheduleAction(0, [&] {
        s.scheduleInertial(Logic::One, 2 * kNanosecond);
        s.scheduleInertial(Logic::Zero, 4 * kNanosecond); // cancels the 2 ns pulse
    });
    c.runUntil(10 * kNanosecond);
    EXPECT_EQ(s.value(), Logic::Zero);
    EXPECT_EQ(s.lastEventTime(), -1); // never actually changed
}

TEST(Scheduler, TransportPreservesEarlierTransactions)
{
    Circuit c;
    auto& s = c.logicSignal("s", Logic::Zero);
    std::vector<SimTime> eventTimes;
    SignalWatch::onEvent(s, [&] { eventTimes.push_back(c.scheduler().now()); });
    c.scheduler().scheduleAction(0, [&] {
        s.scheduleTransport(Logic::One, 2 * kNanosecond);
        s.scheduleTransport(Logic::Zero, 4 * kNanosecond); // both survive
    });
    c.runUntil(10 * kNanosecond);
    ASSERT_EQ(eventTimes.size(), 2u);
    EXPECT_EQ(eventTimes[0], 2 * kNanosecond);
    EXPECT_EQ(eventTimes[1], 4 * kNanosecond);
}

TEST(Scheduler, TransportCancelsLaterTransactions)
{
    Circuit c;
    auto& s = c.logicSignal("s", Logic::Zero);
    c.scheduler().scheduleAction(0, [&] {
        s.scheduleTransport(Logic::One, 5 * kNanosecond);
        s.scheduleTransport(Logic::Zero, 3 * kNanosecond); // cancels the 5 ns one
    });
    c.runUntil(10 * kNanosecond);
    EXPECT_EQ(s.value(), Logic::Zero);
    EXPECT_EQ(s.pendingCount(), 0u);
}

TEST(Scheduler, ProcessWakesOnSignalEvent)
{
    Circuit c;
    auto& s = c.logicSignal("s", Logic::Zero);
    int wakeCount = 0;
    c.process("watcher", [&] { ++wakeCount; }, {&s});
    c.runUntil(0);
    const int initial = wakeCount; // elaboration pass runs it once
    c.scheduler().scheduleAction(kNanosecond, [&] { s.scheduleInertial(Logic::One, 0); });
    c.runUntil(2 * kNanosecond);
    EXPECT_EQ(wakeCount, initial + 1);
}

TEST(Scheduler, NoWakeWithoutValueChange)
{
    Circuit c;
    auto& s = c.logicSignal("s", Logic::Zero);
    int wakeCount = 0;
    c.process("watcher", [&] { ++wakeCount; }, {&s});
    c.runUntil(0);
    const int initial = wakeCount;
    // Writing the same value is a transaction but not an event.
    c.scheduler().scheduleAction(kNanosecond, [&] { s.scheduleInertial(Logic::Zero, 0); });
    c.runUntil(2 * kNanosecond);
    EXPECT_EQ(wakeCount, initial);
}

TEST(Scheduler, ZeroDelayChainsResolveInDeltas)
{
    // a -> not -> b -> not -> c with zero gate delay must settle at one time.
    Circuit c;
    auto& a = c.logicSignal("a", Logic::Zero);
    auto& b = c.logicSignal("b", Logic::U);
    auto& y = c.logicSignal("y", Logic::U);
    c.add<NotGate>(c, "inv1", a, b, SimTime{0});
    c.add<NotGate>(c, "inv2", b, y, SimTime{0});
    c.runUntil(0);
    EXPECT_EQ(b.value(), Logic::One);
    EXPECT_EQ(y.value(), Logic::Zero);
    c.scheduler().scheduleAction(kNanosecond, [&] { a.forceValue(Logic::One); });
    c.runUntil(kNanosecond);
    EXPECT_EQ(y.value(), Logic::One);
    EXPECT_EQ(c.scheduler().now(), kNanosecond);
}

TEST(Scheduler, CombinationalLoopDetected)
{
    Circuit c;
    auto& a = c.logicSignal("a", Logic::Zero);
    auto& b = c.logicSignal("b", Logic::U);
    c.add<NotGate>(c, "inv1", a, b, SimTime{0});
    c.add<NotGate>(c, "inv2", b, a, SimTime{0}); // zero-delay ring oscillator
    EXPECT_THROW(c.runUntil(kNanosecond), std::runtime_error);
}

TEST(Scheduler, ForcedValueVisibleAsEdgeToWokenProcess)
{
    // The mixed-mode bridge forces values from outside the kernel; the woken
    // process must still see signal.event() (edge detection depends on it).
    Circuit c;
    auto& s = c.logicSignal("s", Logic::Zero);
    bool sawRisingEdge = false;
    c.process("edge", [&] { sawRisingEdge = sawRisingEdge || risingEdge(s); }, {&s});
    c.runUntil(kNanosecond);
    s.forceValue(Logic::One);
    c.scheduler().runDeltasNow();
    EXPECT_TRUE(sawRisingEdge);
}

TEST(Scheduler, RunUntilDrainsProcessesWokenByForcedValues)
{
    // Regression: a forceValue from outside the kernel wakes processes but
    // queues no entry; runUntil must still run them (found via a benchmark
    // where an inverter chain silently never propagated).
    Circuit c;
    auto& a = c.logicSignal("a", Logic::Zero);
    auto& b = c.logicSignal("b", Logic::U);
    auto& y = c.logicSignal("y", Logic::U);
    c.add<NotGate>(c, "inv1", a, b, SimTime{0});
    c.add<NotGate>(c, "inv2", b, y, SimTime{0});
    c.runUntil(kNanosecond);
    EXPECT_EQ(y.value(), Logic::Zero);
    a.forceValue(Logic::One);           // no queue entry exists now
    c.runUntil(2 * kNanosecond);        // must still propagate the change
    EXPECT_EQ(y.value(), Logic::One);
}

TEST(Scheduler, NextEventTimePeek)
{
    Circuit c;
    EXPECT_EQ(c.scheduler().nextEventTime(), kTimeMax);
    c.scheduler().scheduleAction(7 * kNanosecond, [] {});
    EXPECT_EQ(c.scheduler().nextEventTime(), 7 * kNanosecond);
}

TEST(Scheduler, LastValueTracksPreviousValue)
{
    Circuit c;
    auto& s = c.logicSignal("s", Logic::Zero);
    c.scheduler().scheduleAction(kNanosecond, [&] { s.scheduleInertial(Logic::One, 0); });
    c.scheduler().scheduleAction(2 * kNanosecond, [&] { s.scheduleInertial(Logic::Zero, 0); });
    c.runUntil(3 * kNanosecond);
    EXPECT_EQ(s.value(), Logic::Zero);
    EXPECT_EQ(s.lastValue(), Logic::One);
}

} // namespace
} // namespace gfi::digital
