// Tests for the SEC-DED-protected RAM: correction on read, double-error
// flagging, scrubbing and the per-word codeword hooks.

#include "harden/ecc_ram.hpp"

#include <gtest/gtest.h>

namespace gfi::harden {
namespace {

using namespace digital;

struct EccRamFixture : ::testing::Test {
    EccRamFixture()
        : clk(c.logicSignal("clk", Logic::Zero)), we(c.logicSignal("we", Logic::Zero)),
          ue(c.logicSignal("ue", Logic::U)), addr(c.bus("addr", 2, Logic::Zero)),
          wdata(c.bus("wdata", 8, Logic::Zero)), rdata(c.bus("rdata", 8, Logic::U)),
          ram(c.add<EccRam>(c, "eram", clk, we, addr, wdata, rdata, &ue))
    {
    }

    void writeWord(SimTime at, int a, std::uint64_t v)
    {
        c.scheduler().scheduleAction(at - 2 * kNanosecond, [this, a, v] {
            we.forceValue(Logic::One);
            addr.forceUint(static_cast<std::uint64_t>(a));
            wdata.forceUint(v);
        });
        c.scheduler().scheduleAction(at, [this] { clk.forceValue(Logic::One); });
        c.scheduler().scheduleAction(at + 5 * kNanosecond, [this] {
            clk.forceValue(Logic::Zero);
            we.forceValue(Logic::Zero);
        });
    }

    Circuit c;
    LogicSignal& clk;
    LogicSignal& we;
    LogicSignal& ue;
    Bus addr;
    Bus wdata;
    Bus rdata;
    EccRam& ram;
};

TEST_F(EccRamFixture, WriteReadRoundTrip)
{
    writeWord(10 * kNanosecond, 2, 0xB7);
    c.scheduler().scheduleAction(20 * kNanosecond, [this] { addr.forceUint(2); });
    c.runUntil(25 * kNanosecond);
    EXPECT_EQ(rdata.toUint(), 0xB7u);
    EXPECT_EQ(ue.value(), Logic::Zero);
    EXPECT_EQ(ram.word(2), 0xB7u);
}

TEST_F(EccRamFixture, SingleBitUpsetCorrectedOnRead)
{
    writeWord(10 * kNanosecond, 1, 0x3C);
    c.scheduler().scheduleAction(20 * kNanosecond, [this] { addr.forceUint(1); });
    c.runUntil(25 * kNanosecond);

    const auto& hook = c.instrumentation().hook("eram/w1");
    EXPECT_EQ(hook.width, 13);
    c.scheduler().scheduleAction(30 * kNanosecond, [&hook] { hook.flipBit(6); });
    c.runUntil(35 * kNanosecond);
    EXPECT_EQ(rdata.toUint(), 0x3Cu); // corrected
    EXPECT_EQ(ue.value(), Logic::Zero);
    EXPECT_GE(ram.correctionCount(), 1);
    // The stored codeword is still corrupted until scrubbed.
    EXPECT_NE(ram.codeword(1), hammingEncode(0x3C, 8));
}

TEST_F(EccRamFixture, ScrubRepairsStoredCodeword)
{
    writeWord(10 * kNanosecond, 3, 0x55);
    c.runUntil(20 * kNanosecond);
    const auto& hook = c.instrumentation().hook("eram/w3");
    c.scheduler().scheduleAction(25 * kNanosecond, [&hook] { hook.flipBit(4); });
    c.runUntil(30 * kNanosecond);
    EXPECT_TRUE(ram.scrub(3));
    EXPECT_EQ(ram.codeword(3), hammingEncode(0x55, 8));
    EXPECT_FALSE(ram.scrub(3)); // clean now
}

TEST_F(EccRamFixture, DoubleBitUpsetRaisesUncorrectable)
{
    writeWord(10 * kNanosecond, 0, 0xF0);
    c.scheduler().scheduleAction(20 * kNanosecond, [this] { addr.forceUint(0); });
    c.runUntil(25 * kNanosecond);
    const auto& hook = c.instrumentation().hook("eram/w0");
    c.scheduler().scheduleAction(30 * kNanosecond, [&hook] {
        hook.flipBit(3);
        hook.flipBit(10);
    });
    c.runUntil(35 * kNanosecond);
    EXPECT_EQ(ue.value(), Logic::One); // MBU detected, never silently wrong
}

TEST_F(EccRamFixture, EveryWordHasACodewordHook)
{
    for (int w = 0; w < 4; ++w) {
        EXPECT_TRUE(c.instrumentation().contains("eram/w" + std::to_string(w)));
        EXPECT_EQ(c.instrumentation().hook("eram/w" + std::to_string(w)).width, 13);
    }
}

} // namespace
} // namespace gfi::harden
