// Tests for RAM/ROM components and their per-word SEU hooks.

#include "digital/memory.hpp"
#include "digital/sequential.hpp"

#include <gtest/gtest.h>

namespace gfi::digital {
namespace {

struct RamFixture : ::testing::Test {
    RamFixture()
        : clk(c.logicSignal("clk", Logic::Zero)), we(c.logicSignal("we", Logic::Zero)),
          addr(c.bus("addr", 3, Logic::Zero)), wdata(c.bus("wdata", 8, Logic::Zero)),
          rdata(c.bus("rdata", 8, Logic::U)),
          ram(c.add<Ram>(c, "ram", clk, we, addr, wdata, rdata))
    {
    }

    void clockPulse(SimTime at)
    {
        c.scheduler().scheduleAction(at, [this] { clk.forceValue(Logic::One); });
        c.scheduler().scheduleAction(at + 5 * kNanosecond,
                                     [this] { clk.forceValue(Logic::Zero); });
    }

    void writeWord(SimTime at, int a, std::uint64_t v)
    {
        c.scheduler().scheduleAction(at - 2 * kNanosecond, [this, a, v] {
            we.forceValue(Logic::One);
            addr.forceUint(static_cast<std::uint64_t>(a));
            wdata.forceUint(v);
        });
        clockPulse(at);
        c.scheduler().scheduleAction(at + 6 * kNanosecond,
                                     [this] { we.forceValue(Logic::Zero); });
    }

    Circuit c;
    LogicSignal& clk;
    LogicSignal& we;
    Bus addr;
    Bus wdata;
    Bus rdata;
    Ram& ram;
};

TEST_F(RamFixture, WriteThenReadBack)
{
    writeWord(10 * kNanosecond, 3, 0xA5);
    writeWord(30 * kNanosecond, 5, 0x3C);
    c.runUntil(40 * kNanosecond);
    EXPECT_EQ(ram.word(3), 0xA5u);
    EXPECT_EQ(ram.word(5), 0x3Cu);

    // Read port follows the address combinationally.
    c.scheduler().scheduleAction(50 * kNanosecond, [this] { addr.forceUint(3); });
    c.runUntil(52 * kNanosecond);
    EXPECT_EQ(rdata.toUint(), 0xA5u);
    c.scheduler().scheduleAction(60 * kNanosecond, [this] { addr.forceUint(5); });
    c.runUntil(62 * kNanosecond);
    EXPECT_EQ(rdata.toUint(), 0x3Cu);
}

TEST_F(RamFixture, WriteIgnoredWithoutEnable)
{
    c.scheduler().scheduleAction(8 * kNanosecond, [this] {
        addr.forceUint(2);
        wdata.forceUint(0xFF);
    });
    clockPulse(10 * kNanosecond);
    c.runUntil(20 * kNanosecond);
    EXPECT_EQ(ram.word(2), 0u);
}

TEST_F(RamFixture, PerWordSeuHooks)
{
    writeWord(10 * kNanosecond, 1, 0x0F);
    c.runUntil(20 * kNanosecond);
    const auto& hook = c.instrumentation().hook("ram/w1");
    EXPECT_EQ(hook.width, 8);
    EXPECT_EQ(hook.get(), 0x0Fu);
    c.scheduler().scheduleAction(30 * kNanosecond, [&hook] { hook.flipBit(7); });
    c.scheduler().scheduleAction(31 * kNanosecond, [this] { addr.forceUint(1); });
    c.runUntil(35 * kNanosecond);
    EXPECT_EQ(ram.word(1), 0x8Fu);
    EXPECT_EQ(rdata.toUint(), 0x8Fu); // SEU visible at the read port
}

TEST_F(RamFixture, EveryWordHasAHook)
{
    for (int w = 0; w < 8; ++w) {
        EXPECT_TRUE(c.instrumentation().contains("ram/w" + std::to_string(w)));
    }
}

TEST(RomTest, LookupAndResize)
{
    Circuit c;
    Bus addr = c.bus("addr", 2, Logic::Zero);
    Bus rdata = c.bus("rdata", 8, Logic::U);
    c.add<Rom>(c, "rom", addr, rdata, std::vector<std::uint64_t>{0x11, 0x22, 0x33});
    c.runUntil(kNanosecond);
    EXPECT_EQ(rdata.toUint(), 0x11u);
    c.scheduler().scheduleAction(5 * kNanosecond, [addr] { addr.forceUint(2); });
    c.runUntil(7 * kNanosecond);
    EXPECT_EQ(rdata.toUint(), 0x33u);
    // Address 3 was not provided: zero-filled.
    c.scheduler().scheduleAction(10 * kNanosecond, [addr] { addr.forceUint(3); });
    c.runUntil(12 * kNanosecond);
    EXPECT_EQ(rdata.toUint(), 0u);
}

TEST(RomTest, UnknownAddressGivesX)
{
    Circuit c;
    Bus addr = c.bus("addr", 2, Logic::Zero);
    Bus rdata = c.bus("rdata", 4, Logic::U);
    c.add<Rom>(c, "rom", addr, rdata, std::vector<std::uint64_t>{1, 2, 3, 4});
    c.scheduler().scheduleAction(kNanosecond, [addr] { addr.bit(0).forceValue(Logic::X); });
    c.runUntil(3 * kNanosecond);
    EXPECT_EQ(rdata.bit(0).value(), Logic::X);
}

} // namespace
} // namespace gfi::digital
