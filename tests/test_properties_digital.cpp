// Parameterized property tests on digital components: maximal-length LFSR
// polynomials, divider ratios, and the protection-mechanism invariants the
// ext_protection bench relies on.

#include "core/campaign.hpp"
#include "digital/sequential.hpp"
#include "duts/protected_dut.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gfi::digital {
namespace {

// --- LFSR maximal-length property ------------------------------------------

struct LfsrPoly {
    int width;
    std::uint64_t taps;
};

class LfsrMaximal : public ::testing::TestWithParam<LfsrPoly> {};

TEST_P(LfsrMaximal, PeriodIsTwoToNMinusOne)
{
    const auto [width, taps] = GetParam();
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    Bus q = c.bus("q", width, Logic::U);
    auto& lfsr = c.add<Lfsr>(c, "lfsr", clk, q, taps, 1);
    c.add<ClockGen>(c, "cg", clk, 10 * kNanosecond);

    c.runUntil(kNanosecond);
    const std::uint64_t s0 = lfsr.state();
    const int period = (1 << width) - 1;
    std::set<std::uint64_t> seen;
    for (int i = 0; i < period; ++i) {
        EXPECT_NE(lfsr.state(), 0u); // the all-zero lockup state is never entered
        seen.insert(lfsr.state());
        c.runUntil(c.scheduler().now() + 10 * kNanosecond);
    }
    EXPECT_EQ(static_cast<int>(seen.size()), period) << "not maximal";
    EXPECT_EQ(lfsr.state(), s0) << "period mismatch";
}

// Classic maximal polynomials (Fibonacci form tap masks).
INSTANTIATE_TEST_SUITE_P(Polynomials, LfsrMaximal,
                         ::testing::Values(LfsrPoly{3, 0x6}, LfsrPoly{4, 0xC},
                                           LfsrPoly{5, 0x14}, LfsrPoly{6, 0x30},
                                           LfsrPoly{7, 0x60}));

// --- divider ratio property ----------------------------------------------------

class DividerRatio : public ::testing::TestWithParam<int> {};

TEST_P(DividerRatio, OutputPeriodIsNInputPeriods)
{
    const int n = GetParam();
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& out = c.logicSignal("out", Logic::U);
    c.add<ClockGen>(c, "cg", clk, 10 * kNanosecond);
    c.add<ClockDivider>(c, "div", clk, out, n);
    std::vector<SimTime> rises;
    SignalWatch::onEvent(out, [&] {
        if (toX01(out.value()) == Logic::One && toX01(out.lastValue()) == Logic::Zero) {
            rises.push_back(c.scheduler().now());
        }
    });
    c.runUntil(static_cast<SimTime>(n) * 10 * kNanosecond * 6);
    ASSERT_GE(rises.size(), 3u);
    for (std::size_t i = 1; i < rises.size(); ++i) {
        EXPECT_EQ(rises[i] - rises[i - 1], static_cast<SimTime>(n) * 10 * kNanosecond);
    }
}

INSTANTIATE_TEST_SUITE_P(Ratios, DividerRatio, ::testing::Values(2, 4, 10, 16, 100));

} // namespace
} // namespace gfi::digital

namespace gfi::duts {
namespace {

// --- protection invariants --------------------------------------------------------

class ProtectionInvariants : public ::testing::TestWithParam<Protection> {};

TEST_P(ProtectionInvariants, GoldenRunsIdenticallyAcrossVariants)
{
    // All variants compute the same payload when fault-free.
    ProtectedDutConfig cfg;
    cfg.protection = GetParam();
    ProtectedDutTestbench tb(cfg);
    tb.run();
    // The output equals counter value minus the one-cycle register latency;
    // just check the output is counting (changes every cycle, wraps mod 256).
    const auto& bit0 = tb.recorder().digitalTrace("dut/q[0]");
    EXPECT_GT(bit0.events.size(), 150u); // toggles every cycle for ~200 cycles
}

TEST_P(ProtectionInvariants, SingleFlipMaskedExactlyWhenCorrectable)
{
    ProtectedDutConfig cfg;
    cfg.protection = GetParam();
    campaign::CampaignRunner runner(
        [cfg] { return std::make_unique<ProtectedDutTestbench>(cfg); });
    const ProtectedDutTestbench probe(cfg);

    const SimTime t = 2 * kMicrosecond + 7 * kNanosecond;
    const std::string target = probe.storageTargets().front();
    const auto r =
        runner.runOne(fault::FaultSpec{fault::BitFlipFault{target, 0, t}});
    switch (cfg.protection) {
    case Protection::None:
        EXPECT_NE(r.outcome, campaign::Outcome::Silent);
        break;
    case Protection::Dwc:
        // copy0 is the primary: a flip there corrupts the data.
        EXPECT_NE(r.outcome, campaign::Outcome::Silent);
        break;
    case Protection::Tmr:
    case Protection::Ecc:
        EXPECT_EQ(r.outcome, campaign::Outcome::Silent);
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(Variants, ProtectionInvariants,
                         ::testing::Values(Protection::None, Protection::Dwc,
                                           Protection::Tmr, Protection::Ecc));

} // namespace
} // namespace gfi::duts
