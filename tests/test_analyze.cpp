// Static fault-space analyzer: signal graph, fault collapsing, SCOAP
// testability, and the collapsed campaign mode.
//
// The contract under test, layer by layer:
//   * SignalGraph levelization and observability over the chain DUT — the
//     observed chain is live, the dead branch provably dark;
//   * chainTerminalOf: zero-delay buffer/inverter chains collapse onto the
//     terminal saboteur with the right inverter parity;
//   * collapseFaults: chain sweeps shrink, dead faults pool into "masked",
//     golden/U-stuck/zero-width stay singletons;
//   * SCOAP scores: monotone controllability along the chain, "n/a"
//     observability in the dead cone;
//   * collapsed campaigns report byte-identical per-fault classifications to
//     full campaigns (chain DUT, digital DUT, CPU system), serial and at 8
//     workers, including mid-campaign journal resume;
//   * PRE007 warns on statically-unobservable fault targets.

#include "analyze/analyze.hpp"
#include "analyze/collapse.hpp"
#include "analyze/graph.hpp"
#include "core/campaign.hpp"
#include "core/journal.hpp"
#include "core/report.hpp"
#include "duts/chain_dut.hpp"
#include "duts/cpu_system.hpp"
#include "duts/digital_dut.hpp"
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

namespace gfi {
namespace {

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// ---------------------------------------------------------------------------
// SignalGraph: levels and observability on the chain DUT

TEST(AnalyzeGraph, ChainLevelsAndObservability)
{
    duts::ChainDutTestbench tb;
    const analyze::SignalGraph g(tb);
    const auto& dig = tb.sim().digital();

    EXPECT_EQ(g.cyclicSignals(), 0u);
    EXPECT_GT(g.maxLevel(), 0);

    // The observed chain is live end to end.
    for (int i = 0; i < 8; ++i) {
        const std::string name = "chain/n" + std::to_string(i);
        EXPECT_TRUE(g.signalObservable(&dig.findSignal(name))) << name;
    }
    EXPECT_TRUE(g.signalObservable(&dig.findSignal("chain/q")));

    // The dead branch has no structural path to anything observed.
    EXPECT_FALSE(g.signalObservable(&dig.findSignal("chain/d0")));
    EXPECT_FALSE(g.signalObservable(&dig.findSignal("chain/d1")));
    EXPECT_FALSE(g.signalObservable(&dig.findSignal("chain/dead_q")));

    // Levels grow monotonically along the zero-delay chain.
    const auto level = [&](const std::string& name) {
        const int idx = g.indexOf(&dig.findSignal(name));
        EXPECT_GE(idx, 0) << name;
        return g.nodes()[static_cast<std::size_t>(idx)].level;
    };
    int prev = level("chain/n0");
    for (int i = 1; i < 8; ++i) {
        const int cur = level("chain/n" + std::to_string(i));
        EXPECT_GT(cur, prev) << "chain/n" << i;
        prev = cur;
    }
    // The flip-flop output is a sequential source again: level 0.
    EXPECT_EQ(level("chain/q"), 0);
}

TEST(AnalyzeGraph, ChainTerminalTracksInverterParity)
{
    duts::ChainDutTestbench tb;
    const analyze::SignalGraph g(tb);

    // c0..c2 sit upstream of the inverter, c3..c5 downstream.
    for (const char* name : {"sab/c0", "sab/c1", "sab/c2"}) {
        const auto t = g.chainTerminalOf(name);
        EXPECT_EQ(t.saboteur, "sab/c5") << name;
        EXPECT_TRUE(t.inverted) << name;
    }
    for (const char* name : {"sab/c3", "sab/c4", "sab/c5"}) {
        const auto t = g.chainTerminalOf(name);
        EXPECT_EQ(t.saboteur, "sab/c5") << name;
        EXPECT_FALSE(t.inverted) << name;
    }
    // The dead saboteur's chain ends at itself (flip-flop downstream).
    const auto dead = g.chainTerminalOf("sab/dead");
    EXPECT_EQ(dead.saboteur, "sab/dead");
    EXPECT_FALSE(dead.inverted);
    // Unknown names resolve to themselves.
    EXPECT_EQ(g.chainTerminalOf("sab/nope").saboteur, "sab/nope");
}

// ---------------------------------------------------------------------------
// SCOAP testability

TEST(AnalyzeScoap, ChainScoresAreFiniteAndDeadConeUnobservable)
{
    duts::ChainDutTestbench tb;
    const analyze::AnalysisReport rep = analyze::analyzeTestbench(tb);

    EXPECT_GT(rep.signals, 10u);
    EXPECT_EQ(rep.cyclicSignals, 0u);
    EXPECT_GT(rep.observableSignals, 0u);
    EXPECT_GT(rep.unobservableSignals, 0u) << "the dead branch must show up";

    bool sawChain = false;
    bool sawDead = false;
    for (const analyze::NodeScore& s : rep.testability.ranked) {
        if (s.signal == "chain/n7") {
            sawChain = true;
            EXPECT_TRUE(s.observable);
            EXPECT_LT(s.cc, analyze::kInfCost);
            EXPECT_GE(s.co, 0);
        }
        if (s.signal == "chain/dead_q") {
            sawDead = true;
            EXPECT_FALSE(s.observable);
            EXPECT_LT(s.co, 0) << "no path to a sink: CO must be the n/a marker";
        }
    }
    EXPECT_TRUE(sawChain);
    EXPECT_TRUE(sawDead);

    // Renderings stay consistent with the structural facts.
    const std::string table = rep.table(0);
    EXPECT_NE(table.find("chain/dead_q"), std::string::npos);
    EXPECT_NE(table.find("n/a"), std::string::npos);
    const std::string json = rep.json();
    EXPECT_NE(json.find("\"observable\": false"), std::string::npos);
}

// ---------------------------------------------------------------------------
// collapseFaults: the partition itself

TEST(AnalyzeCollapse, ChainSweepPartition)
{
    duts::ChainDutTestbench tb;
    const auto sabs = duts::ChainDutTestbench::chainSaboteurs();

    std::vector<fault::FaultSpec> faults;
    faults.emplace_back(fault::FaultSpec{}); // golden: always its own class
    for (const std::string& sab : sabs) {
        faults.emplace_back(fault::DigitalPulseFault{sab, kMicrosecond, 2 * kNanosecond});
    }
    const std::size_t stuck0AtC0 = faults.size();
    faults.emplace_back(
        fault::StuckAtFault{sabs[0], digital::Logic::Zero, kMicrosecond, 0});
    const std::size_t stuck1AtC5 = faults.size();
    faults.emplace_back(
        fault::StuckAtFault{sabs[5], digital::Logic::One, kMicrosecond, 0});
    const std::size_t stuckXAtC0 = faults.size();
    faults.emplace_back(
        fault::StuckAtFault{sabs[0], digital::Logic::X, kMicrosecond, 0});
    const std::size_t deadPulse = faults.size();
    faults.emplace_back(fault::DigitalPulseFault{duts::ChainDutTestbench::deadSaboteur(),
                                                 kMicrosecond, 2 * kNanosecond});
    const std::size_t deadStuck = faults.size();
    faults.emplace_back(fault::StuckAtFault{duts::ChainDutTestbench::deadSaboteur(),
                                            digital::Logic::One, kMicrosecond, 0});
    const std::size_t zeroWidth = faults.size();
    faults.emplace_back(fault::DigitalPulseFault{sabs[0], kMicrosecond, 0});

    const analyze::CollapsePlan plan = analyze::collapseFaults(tb, faults);
    ASSERT_EQ(plan.repOf.size(), faults.size());

    // Golden stands alone.
    EXPECT_TRUE(plan.isRepresentative(0));

    // All six same-(time,width) chain pulses share the first one's class.
    for (std::size_t i = 1; i <= 6; ++i) {
        EXPECT_EQ(plan.repOf[i], 1u) << "pulse " << i;
    }

    // stuck-at-0 upstream of the inverter == stuck-at-1 at the terminal.
    EXPECT_EQ(plan.classKey[stuck0AtC0], plan.classKey[stuck1AtC5]);
    EXPECT_EQ(plan.repOf[stuck1AtC5], stuck0AtC0);

    // Stuck-at-X does not ride the chain (U/X pass-through differs).
    EXPECT_TRUE(plan.isRepresentative(stuckXAtC0));

    // Dead-branch faults pool into the one statically-masked class.
    EXPECT_EQ(plan.classKey[deadPulse], "masked");
    EXPECT_EQ(plan.classKey[deadStuck], "masked");
    EXPECT_EQ(plan.repOf[deadStuck], deadPulse);

    // Zero-width pulses stay singletons (delta-glitch ordering not modeled).
    EXPECT_TRUE(plan.isRepresentative(zeroWidth));

    EXPECT_EQ(plan.classes() + plan.collapsedRuns(), faults.size());
    EXPECT_GE(plan.collapsedRuns(), 7u);
}

// ---------------------------------------------------------------------------
// collapsed campaigns == full campaigns, per-fault classification for
// classification, byte for byte

struct CampaignOutput {
    std::string journal;
    std::string detail;
    std::string summary;
    std::string json;
    campaign::CampaignReport report;
};

CampaignOutput runCampaign(const fault::TestbenchFactory& factory,
                           const std::vector<fault::FaultSpec>& faults, unsigned workers,
                           bool collapse, const std::string& tag)
{
    const std::string path = ::testing::TempDir() + "gfi_analyze_" + tag + ".jsonl";
    std::remove(path.c_str());
    campaign::CampaignRunner runner(factory);
    runner.setWorkers(workers);
    runner.setRecordTiming(false); // keep reports byte-comparable across modes
    runner.setFaultCollapsing(collapse);
    runner.setJournalPath(path);
    CampaignOutput out;
    out.report = runner.run(faults);
    out.journal = slurp(path);
    out.detail = out.report.detailTable();
    out.summary = out.report.summaryTable();
    out.json = campaign::reportToJson(out.report);
    std::remove(path.c_str());
    return out;
}

void expectCollapsedEqualsFull(const fault::TestbenchFactory& factory,
                               const std::vector<fault::FaultSpec>& faults,
                               const std::string& tag, bool expectCollapse)
{
    const CampaignOutput full = runCampaign(factory, faults, 1, false, tag + "_full");
    ASSERT_EQ(full.report.runs.size(), faults.size());

    const CampaignOutput collapsed =
        runCampaign(factory, faults, 1, true, tag + "_collapsed");
    ASSERT_EQ(collapsed.report.runs.size(), faults.size());

    // The per-fault classification listing is byte-identical across modes.
    EXPECT_EQ(collapsed.detail, full.detail) << tag << ": classifications diverge";

    std::size_t expanded = 0;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        EXPECT_EQ(collapsed.report.runs[i].outcome, full.report.runs[i].outcome) << i;
        if (!collapsed.report.runs[i].diagnostics.collapsedFrom.empty()) {
            ++expanded;
        }
    }
    if (expectCollapse) {
        EXPECT_GT(expanded, 0u) << tag << ": nothing collapsed";
        EXPECT_NE(collapsed.summary.find("collapsed runs"), std::string::npos)
            << collapsed.summary;
        EXPECT_NE(collapsed.journal.find("\"collapsed_from\""), std::string::npos);
        EXPECT_NE(collapsed.json.find("\"collapsed_from\""), std::string::npos);
    }

    // Within collapsed mode, 8 workers are byte-identical to serial.
    const CampaignOutput wide = runCampaign(factory, faults, 8, true, tag + "_wide");
    EXPECT_EQ(wide.journal, collapsed.journal) << tag << ": 8-worker journal differs";
    EXPECT_EQ(wide.summary, collapsed.summary) << tag << ": 8-worker summary differs";
    EXPECT_EQ(wide.json, collapsed.json) << tag << ": 8-worker JSON differs";
}

std::vector<fault::FaultSpec> chainSweep()
{
    std::vector<fault::FaultSpec> faults{fault::FaultSpec{}};
    for (const std::string& sab : duts::ChainDutTestbench::chainSaboteurs()) {
        faults.emplace_back(fault::DigitalPulseFault{sab, kMicrosecond, 2 * kNanosecond});
        faults.emplace_back(
            fault::StuckAtFault{sab, digital::Logic::One, kMicrosecond, 40 * kNanosecond});
    }
    faults.emplace_back(fault::DigitalPulseFault{duts::ChainDutTestbench::deadSaboteur(),
                                                 kMicrosecond, 2 * kNanosecond});
    faults.emplace_back(fault::StuckAtFault{duts::ChainDutTestbench::deadSaboteur(),
                                            digital::Logic::Zero, kMicrosecond, 0});
    return faults;
}

TEST(AnalyzeCollapse, ChainCampaignByteIdentical)
{
    expectCollapsedEqualsFull([] { return std::make_unique<duts::ChainDutTestbench>(); },
                              chainSweep(), "chain", /*expectCollapse=*/true);
}

TEST(AnalyzeCollapse, DigitalDutCampaignByteIdentical)
{
    const duts::DigitalDutTestbench probe;
    std::vector<fault::FaultSpec> faults{fault::FaultSpec{}};
    const SimTime t = 2 * kMicrosecond + 7 * kNanosecond;
    for (const auto& [name, hook] : probe.sim().digital().instrumentation().all()) {
        faults.emplace_back(fault::BitFlipFault{name, 0, t});
        (void)hook;
    }
    for (const std::string& sab : probe.digitalSaboteurNames()) {
        faults.emplace_back(fault::DigitalPulseFault{sab, t, 25 * kNanosecond});
        faults.emplace_back(fault::StuckAtFault{sab, digital::Logic::One, t, 0});
    }
    ASSERT_GE(faults.size(), 6u);
    // The digital DUT observes its whole cone: nothing may collapse, and the
    // collapsed mode must degrade to a plain campaign.
    expectCollapsedEqualsFull([] { return std::make_unique<duts::DigitalDutTestbench>(); },
                              faults, "dut", /*expectCollapse=*/false);
}

TEST(AnalyzeCollapse, CpuSystemCampaignByteIdentical)
{
    duts::CpuSystemConfig cfg;
    const duts::CpuSystemTestbench probe(cfg);
    std::vector<fault::FaultSpec> faults{fault::FaultSpec{}};
    const auto names = probe.sim().digital().instrumentation().names();
    std::size_t added = 0;
    for (const std::string& name : names) {
        if (added == 8) {
            break;
        }
        faults.emplace_back(
            fault::BitFlipFault{name, 0, 2 * kMicrosecond + static_cast<SimTime>(added) * 41});
        ++added;
    }
    ASSERT_GE(faults.size(), 5u);
    expectCollapsedEqualsFull(
        [cfg] { return std::make_unique<duts::CpuSystemTestbench>(cfg); }, faults, "cpu",
        /*expectCollapse=*/false);
}

// Mid-campaign journal resume under collapsing: phase 1 journals the first k
// runs (representatives AND expansions) and dies; phase 2 restores them and
// finishes. The converged journal must equal the uninterrupted one.
TEST(AnalyzeCollapse, JournalResumeConvergesToCollapsedBytes)
{
    const auto factory = [] { return std::make_unique<duts::ChainDutTestbench>(); };
    const std::vector<fault::FaultSpec> faults = chainSweep();

    const CampaignOutput reference = runCampaign(factory, faults, 1, true, "resume_ref");

    const std::string path = ::testing::TempDir() + "gfi_analyze_resume.jsonl";
    std::remove(path.c_str());
    const std::size_t k = faults.size() / 2;
    {
        campaign::CampaignRunner partial(factory);
        partial.setRecordTiming(false);
        partial.setFaultCollapsing(true);
        partial.setJournalPath(path);
        (void)partial.run({faults.begin(), faults.begin() + static_cast<long>(k)});
    }
    campaign::CampaignRunner resumed(factory);
    resumed.setRecordTiming(false);
    resumed.setFaultCollapsing(true);
    resumed.setJournalPath(path);
    resumed.setWorkers(2);
    const campaign::CampaignReport report = resumed.run(faults);

    for (std::size_t i = 0; i < k; ++i) {
        EXPECT_TRUE(report.runs[i].diagnostics.fromJournal) << i;
    }
    EXPECT_EQ(slurp(path), reference.journal);
    std::remove(path.c_str());
}

// The GFI_COLLAPSE environment variable enables collapsing; the explicit
// setter wins in both directions.
TEST(AnalyzeCollapse, EnvVarEnablesAndExplicitOptOutWins)
{
    const std::vector<fault::FaultSpec> faults = chainSweep();
    const auto factory = [] { return std::make_unique<duts::ChainDutTestbench>(); };

    ::setenv("GFI_COLLAPSE", "1", 1);
    {
        campaign::CampaignRunner runner(factory);
        runner.setRecordTiming(false);
        const campaign::CampaignReport report = runner.run(faults);
        std::size_t expanded = 0;
        for (const campaign::RunResult& r : report.runs) {
            expanded += r.diagnostics.collapsedFrom.empty() ? 0 : 1;
        }
        EXPECT_GT(expanded, 0u);
    }
    {
        campaign::CampaignRunner runner(factory);
        runner.setRecordTiming(false);
        runner.setFaultCollapsing(false); // explicit opt-out beats the environment
        const campaign::CampaignReport report = runner.run(faults);
        for (const campaign::RunResult& r : report.runs) {
            EXPECT_TRUE(r.diagnostics.collapsedFrom.empty());
        }
    }
    ::unsetenv("GFI_COLLAPSE");
}

// ---------------------------------------------------------------------------
// journal round-trip of the provenance field

TEST(AnalyzeCollapse, JournalRoundTripsCollapsedFrom)
{
    campaign::RunResult r;
    r.fault = fault::DigitalPulseFault{"sab/c1", kMicrosecond, 2 * kNanosecond};
    r.outcome = campaign::Outcome::TransientError;
    r.diagnostics.collapsedFrom = "pulse sab/c5 @1us width 2ns";
    const std::string line = campaign::CampaignJournal::entryToJson(3, r);
    EXPECT_NE(line.find("\"collapsed_from\""), std::string::npos) << line;
    const auto parsed = campaign::CampaignJournal::parseLine(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->result.diagnostics.collapsedFrom, r.diagnostics.collapsedFrom);

    // Absent field parses to empty (old journals stay readable).
    campaign::RunResult plain;
    plain.outcome = campaign::Outcome::Silent;
    const auto reparsed =
        campaign::CampaignJournal::parseLine(campaign::CampaignJournal::entryToJson(0, plain));
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_TRUE(reparsed->result.diagnostics.collapsedFrom.empty());
}

// ---------------------------------------------------------------------------
// PRE007: statically-unobservable fault targets

TEST(AnalyzePreflight, Pre007WarnsOnDeadTargets)
{
    duts::ChainDutTestbench tb;
    const std::vector<fault::FaultSpec> faults{
        fault::DigitalPulseFault{duts::ChainDutTestbench::deadSaboteur(), kMicrosecond,
                                 2 * kNanosecond},
        fault::DigitalPulseFault{"sab/c2", kMicrosecond, 2 * kNanosecond},
    };
    const lint::Report rep = lint::preflightCampaign(tb, faults);
    EXPECT_EQ(rep.count(lint::Severity::Error), 0u) << rep.table();
    EXPECT_GT(rep.count(lint::Severity::Warning), 0u);
    EXPECT_NE(rep.table().find("PRE007"), std::string::npos) << rep.table();
    EXPECT_NE(rep.table().find("sab/dead"), std::string::npos) << rep.table();
    EXPECT_EQ(rep.table().find("sab/c2"), std::string::npos)
        << "live targets must not warn:\n"
        << rep.table();

    // Warnings never block the campaign.
    campaign::CampaignRunner runner([] { return std::make_unique<duts::ChainDutTestbench>(); });
    runner.setRecordTiming(false);
    const campaign::CampaignReport report = runner.run(faults);
    EXPECT_EQ(report.runs.size(), 2u);
    EXPECT_EQ(report.runs[0].outcome, campaign::Outcome::Silent)
        << "a dead-branch fault cannot reach the observed outputs";
}

} // namespace
} // namespace gfi
