// Tests for the gate-level structural PFD and its equivalence to the
// behavioral model (the paper's planned multi-level comparison).

#include "pll/pfd.hpp"
#include "pll/pfd_structural.hpp"
#include "pll/pll.hpp"
#include "trace/metrics.hpp"

#include <gtest/gtest.h>

namespace gfi::pll {
namespace {

using digital::Logic;

TEST(StructuralPfdTest, UpRaisesOnRefAndResetsAfterFb)
{
    digital::Circuit c;
    auto& ref = c.logicSignal("ref", Logic::Zero);
    auto& fb = c.logicSignal("fb", Logic::Zero);
    auto& up = c.logicSignal("up", Logic::U);
    auto& down = c.logicSignal("down", Logic::U);
    c.add<StructuralPfd>(c, "pfd", ref, fb, up, down);
    c.runUntil(kNanosecond);

    c.scheduler().scheduleAction(10 * kNanosecond, [&ref] { ref.forceValue(Logic::One); });
    c.runUntil(12 * kNanosecond);
    EXPECT_EQ(up.value(), Logic::One);
    EXPECT_NE(down.value(), Logic::One);

    c.scheduler().scheduleAction(30 * kNanosecond, [&fb] { fb.forceValue(Logic::One); });
    c.runUntil(29 * kNanosecond);
    EXPECT_EQ(up.value(), Logic::One); // still leading
    c.runUntil(35 * kNanosecond);
    // AND reset propagated: both flags cleared.
    EXPECT_EQ(up.value(), Logic::Zero);
    EXPECT_EQ(down.value(), Logic::Zero);
}

TEST(StructuralPfdTest, SymmetricForFbLeading)
{
    digital::Circuit c;
    auto& ref = c.logicSignal("ref", Logic::Zero);
    auto& fb = c.logicSignal("fb", Logic::Zero);
    auto& up = c.logicSignal("up", Logic::U);
    auto& down = c.logicSignal("down", Logic::U);
    c.add<StructuralPfd>(c, "pfd", ref, fb, up, down);
    c.runUntil(kNanosecond);

    c.scheduler().scheduleAction(10 * kNanosecond, [&fb] { fb.forceValue(Logic::One); });
    c.runUntil(12 * kNanosecond);
    EXPECT_EQ(down.value(), Logic::One);
    EXPECT_NE(up.value(), Logic::One);
}

TEST(StructuralPfdTest, RegistersPerFlopHooks)
{
    digital::Circuit c;
    auto& ref = c.logicSignal("ref", Logic::Zero);
    auto& fb = c.logicSignal("fb", Logic::Zero);
    auto& up = c.logicSignal("up", Logic::U);
    auto& down = c.logicSignal("down", Logic::U);
    auto& pfd = c.add<StructuralPfd>(c, "pfd", ref, fb, up, down);
    EXPECT_TRUE(c.instrumentation().contains(pfd.upFlopHook()));
    EXPECT_TRUE(c.instrumentation().contains(pfd.downFlopHook()));

    // Initialize the flops via one normal UP/DOWN cycle (they power up 'U').
    c.scheduler().scheduleAction(5 * kNanosecond, [&ref] { ref.forceValue(Logic::One); });
    c.scheduler().scheduleAction(10 * kNanosecond, [&fb] { fb.forceValue(Logic::One); });
    c.runUntil(15 * kNanosecond);
    ASSERT_EQ(up.value(), Logic::Zero);

    // An SEU in the UP flop produces a spurious UP pulse until the next
    // reset, exactly like the behavioral hook's bit 0.
    const auto& hook = c.instrumentation().hook(pfd.upFlopHook());
    c.scheduler().scheduleAction(20 * kNanosecond, [&hook] { hook.flipBit(0); });
    c.runUntil(21 * kNanosecond);
    EXPECT_EQ(up.value(), Logic::One);
}

TEST(StructuralPfdTest, PllLocksWithGateLevelPfd)
{
    PllConfig cfg;
    cfg.duration = 130 * kMicrosecond;
    cfg.structuralPfd = true;
    PllTestbench tb(cfg);
    tb.run();
    const SimTime tLock =
        lockTime(tb.recorder().digitalTrace(names::kFout), cfg.nominalOutputPeriod());
    ASSERT_GT(tLock, 0);
    EXPECT_LT(tLock, 120 * kMicrosecond);
    EXPECT_NEAR(tb.recorder().analogTrace(names::kVctrl).samples.back().second, 1.0, 0.01);
}

} // namespace
} // namespace gfi::pll
