// Bit-parallel batch backend: differential equivalence with the event-driven
// kernel.
//
// The contract under test: a campaign run with the batch backend enabled
// produces *identical observable output* to the event-driven run — the same
// per-fault classifications, byte-identical journals (modulo the additive
// "batch_lane" provenance key), identical summary/detail/JSON reports — on
// every digital DUT, at 1 and 8 workers, with fault collapsing on and off.
// Designs the word compiler cannot lift (CpuSystem's custom components) must
// fall back wholesale and still match. A seeded random-netlist fuzzer sweeps
// ≥100 generated circuits × random fault lists through both backends, and a
// mid-campaign journal resume of a batched campaign must reproduce the
// uninterrupted run byte-for-byte.

#include "batch/word_model.hpp"
#include "core/campaign.hpp"
#include "core/report.hpp"
#include "core/saboteur.hpp"
#include "digital/gates.hpp"
#include "digital/sequential.hpp"
#include "digital/stimulus.hpp"
#include "duts/chain_dut.hpp"
#include "duts/cpu_system.hpp"
#include "duts/digital_dut.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace gfi::campaign {
namespace {

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Removes every `, "batch_lane": N` provenance key — the only journal bytes
/// the batch backend is allowed to add relative to the event-driven kernel.
std::string stripBatchLane(std::string s)
{
    const std::string key = ", \"batch_lane\": ";
    std::size_t pos = 0;
    while ((pos = s.find(key, pos)) != std::string::npos) {
        std::size_t end = pos + key.size();
        while (end < s.size() && std::isdigit(static_cast<unsigned char>(s[end]))) {
            ++end;
        }
        s.erase(pos, end - pos);
    }
    return s;
}

/// Removes the value of the trailing batch_lane CSV column (batched rows end
/// ",N"; event-driven rows end ","), leaving the rest of the row untouched.
std::string stripCsvLaneColumn(std::string s)
{
    std::string out;
    out.reserve(s.size());
    std::size_t start = 0;
    while (start < s.size()) {
        std::size_t end = s.find('\n', start);
        if (end == std::string::npos) {
            end = s.size();
        }
        std::size_t cut = end;
        while (cut > start && std::isdigit(static_cast<unsigned char>(s[cut - 1]))) {
            --cut;
        }
        if (cut == end || cut == start || s[cut - 1] != ',') {
            cut = end; // not a ",<digits>" tail — keep the line as-is
        }
        out.append(s, start, cut - start);
        if (end < s.size()) {
            out += '\n';
        }
        start = end + 1;
    }
    return out;
}

struct CampaignOutput {
    std::string journal; ///< raw JSONL bytes
    std::string summary;
    std::string detail;
    std::string json;
    std::string csv;
    CampaignReport report;
};

CampaignOutput runOne(const fault::TestbenchFactory& factory,
                      const std::vector<fault::FaultSpec>& faults, unsigned workers,
                      bool batch, bool collapse, const std::string& tag)
{
    const std::string path = ::testing::TempDir() + "gfi_batch_" + tag + "_" +
                             std::to_string(workers) + (batch ? "_b" : "_e") +
                             (collapse ? "_c" : "_n") + ".jsonl";
    std::remove(path.c_str());
    CampaignRunner runner(factory);
    runner.setWorkers(workers);
    runner.setRecordTiming(false); // wall clock is the only nondeterministic field
    runner.setJournalPath(path);
    runner.setBatchBackend(batch);
    runner.setFaultCollapsing(collapse);
    CampaignOutput out;
    out.report = runner.run(faults);
    out.journal = slurp(path);
    out.summary = out.report.summaryTable();
    out.detail = out.report.detailTable();
    out.json = reportToJson(out.report);
    const std::string csvPath = path + ".csv";
    writeReportCsv(out.report, csvPath);
    out.csv = slurp(csvPath);
    std::remove(csvPath.c_str());
    std::remove(path.c_str());
    return out;
}

/// Runs @p faults through both backends at 1 and 8 workers, collapse off and
/// on, and requires byte-identical output. @p expectLanes says whether the
/// batched journal must (true) or must not (false) carry lane provenance.
void expectBatchEqualsEvent(const fault::TestbenchFactory& factory,
                            const std::vector<fault::FaultSpec>& faults,
                            const std::string& tag, bool expectLanes)
{
    // Batched outputs (lane fields included) must also be byte-identical
    // across worker widths: lane assignment is list-order deterministic.
    std::map<bool, CampaignOutput> batchAtOneWorker;
    for (const unsigned workers : {1u, 8u}) {
        for (const bool collapse : {false, true}) {
            const std::string where = tag + " workers=" + std::to_string(workers) +
                                      " collapse=" + (collapse ? "on" : "off");
            const CampaignOutput event =
                runOne(factory, faults, workers, false, collapse, tag);
            const CampaignOutput batch =
                runOne(factory, faults, workers, true, collapse, tag);
            ASSERT_EQ(event.report.runs.size(), faults.size()) << where;
            EXPECT_FALSE(event.journal.empty()) << where;
            EXPECT_EQ(stripBatchLane(batch.journal), event.journal)
                << where << ": journal not byte-identical";
            EXPECT_EQ(batch.summary, event.summary) << where << ": summary differs";
            EXPECT_EQ(batch.detail, event.detail) << where << ": detail table differs";
            EXPECT_EQ(stripBatchLane(batch.json), event.json)
                << where << ": JSON report differs";
            EXPECT_EQ(stripCsvLaneColumn(batch.csv), event.csv)
                << where << ": CSV report differs";
            if (expectLanes) {
                EXPECT_NE(batch.journal.find("\"batch_lane\""), std::string::npos)
                    << where << ": batched journal carries no lane provenance — "
                              "the backend silently fell back";
            } else {
                EXPECT_EQ(batch.journal.find("\"batch_lane\""), std::string::npos)
                    << where << ": design-ineligible campaign must not record lanes";
            }
            ASSERT_EQ(batch.report.runs.size(), event.report.runs.size()) << where;
            for (std::size_t i = 0; i < event.report.runs.size(); ++i) {
                EXPECT_EQ(batch.report.runs[i].outcome, event.report.runs[i].outcome)
                    << where << ": fault " << i << " reclassified";
                EXPECT_EQ(batch.report.runs[i].erredSignals,
                          event.report.runs[i].erredSignals)
                    << where << ": fault " << i;
                EXPECT_EQ(batch.report.runs[i].corruptedState,
                          event.report.runs[i].corruptedState)
                    << where << ": fault " << i;
                EXPECT_EQ(batch.report.runs[i].diagnostics.digitalWaves,
                          event.report.runs[i].diagnostics.digitalWaves)
                    << where << ": fault " << i << " wave count diverged";
            }
            if (workers == 1) {
                batchAtOneWorker[collapse] = batch;
            } else {
                const CampaignOutput& serial = batchAtOneWorker[collapse];
                EXPECT_EQ(batch.journal, serial.journal)
                    << where << ": batched journal not worker-width invariant";
                EXPECT_EQ(batch.json, serial.json)
                    << where << ": batched JSON not worker-width invariant";
                EXPECT_EQ(batch.csv, serial.csv)
                    << where << ": batched CSV not worker-width invariant";
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Curated DUTs

/// Every registered digital fault on the DigitalDut — bit flips across all
/// state hooks, stuck-ats and SET pulses on every saboteur, an FSM transition
/// corruption and a state write. The SET pulses are deliberately included:
/// they are batch-INeligible (timing-dependent) and must fall back per-fault
/// while their eligible neighbours batch.
std::vector<fault::FaultSpec> digitalDutFaults()
{
    std::vector<fault::FaultSpec> faults{fault::FaultSpec{}};
    const duts::DigitalDutTestbench probe;
    const auto& registry = probe.sim().digital().instrumentation();
    const SimTime t = 2 * kMicrosecond + 7 * kNanosecond;
    for (const auto& [name, hook] : registry.all()) {
        faults.emplace_back(fault::BitFlipFault{name, 0, t});
        if (hook.width > 1) {
            faults.emplace_back(
                fault::BitFlipFault{name, hook.width - 1, t + 40 * kNanosecond});
            faults.emplace_back(
                fault::DoubleBitFlipFault{name, 0, hook.width - 1, t + 11 * kNanosecond});
        }
        faults.emplace_back(fault::StateWriteFault{name, 0x2A, t + 23 * kNanosecond});
    }
    for (const std::string& sab : probe.digitalSaboteurNames()) {
        faults.emplace_back(fault::StuckAtFault{sab, digital::Logic::One, t, 0});
        faults.emplace_back(
            fault::StuckAtFault{sab, digital::Logic::Zero, t, 300 * kNanosecond});
        faults.emplace_back(fault::DigitalPulseFault{sab, t, 25 * kNanosecond});
    }
    faults.emplace_back(fault::FsmTransitionFault{"dut/fsm", 3, t + 5 * kNanosecond});
    return faults;
}

TEST(BatchCampaign, DigitalDutEquivalence)
{
    const auto factory = [] { return std::make_unique<duts::DigitalDutTestbench>(); };
    const auto faults = digitalDutFaults();
    ASSERT_GE(faults.size(), 20u);
    expectBatchEqualsEvent(factory, faults, "digital", /*expectLanes=*/true);
}

TEST(BatchCampaign, ChainDutEquivalence)
{
    const auto factory = [] { return std::make_unique<duts::ChainDutTestbench>(); };
    std::vector<fault::FaultSpec> faults{fault::FaultSpec{}};
    const duts::ChainDutTestbench probe;
    const SimTime t = 800 * kNanosecond + 3 * kNanosecond;
    for (const auto& [name, hook] : probe.sim().digital().instrumentation().all()) {
        faults.emplace_back(fault::BitFlipFault{name, 0, t});
        if (hook.width > 1) {
            faults.emplace_back(
                fault::BitFlipFault{name, hook.width - 1, t + 60 * kNanosecond});
        }
    }
    for (const std::string& sab : probe.digitalSaboteurNames()) {
        faults.emplace_back(fault::StuckAtFault{sab, digital::Logic::One, t, 0});
        faults.emplace_back(
            fault::StuckAtFault{sab, digital::Logic::Zero, t + 20 * kNanosecond,
                                150 * kNanosecond});
    }
    ASSERT_GE(faults.size(), 8u);
    expectBatchEqualsEvent(factory, faults, "chain", /*expectLanes=*/true);
}

// CpuSystem overrides run() and registers components (TinyCpu, Ram) outside
// the word library: the whole design is batch-ineligible. Enabling the batch
// backend must be a silent no-op — every fault runs event-driven and no lane
// provenance appears.
TEST(BatchCampaign, CpuSystemFallsBackWholeDesign)
{
    const auto factory = [] { return std::make_unique<duts::CpuSystemTestbench>(); };
    const duts::CpuSystemTestbench probe;
    {
        const batch::CompileResult compiled = batch::compileWordModel(probe);
        EXPECT_EQ(compiled.model, nullptr);
        EXPECT_FALSE(compiled.reason.empty());
    }
    std::vector<fault::FaultSpec> faults{fault::FaultSpec{}};
    const auto names = probe.sim().digital().instrumentation().names();
    const SimTime t = 2 * kMicrosecond + 13 * kNanosecond;
    for (std::size_t i = 0; i < names.size() && i < 5; ++i) {
        faults.emplace_back(fault::BitFlipFault{names[i], 0, t});
    }
    ASSERT_GE(faults.size(), 4u);
    expectBatchEqualsEvent(factory, faults, "cpu", /*expectLanes=*/false);
}

// ---------------------------------------------------------------------------
// Property-based fuzz: random netlists × random fault lists

using digital::Bus;
using digital::ClockGen;
using digital::DFlipFlop;
using digital::Gate;
using digital::GateKind;
using digital::Lfsr;
using digital::Logic;
using digital::LogicSignal;
using digital::StimulusSchedule;

/// A seeded, acyclic random netlist built only from word-library components:
/// an 8-bit LFSR stimulus feeding a random DAG of gates, a few DFFs and one
/// or two saboteur-instrumented interconnects. Acyclicity holds by
/// construction (gate inputs are drawn only from already-created signals) and
/// observed names are distinct (drawn from a set).
class RandomNetlistTestbench : public fault::Testbench {
public:
    explicit RandomNetlistTestbench(std::uint64_t seed)
    {
        Rng rng(0x5EEDu ^ (seed * 0x9E3779B97F4A7C15ull));
        auto& dig = sim().digital();
        const SimTime period = 20 * kNanosecond;

        auto& clk = dig.logicSignal("rn/clk", Logic::Zero);
        dig.add<ClockGen>(dig, "rn/clkgen", clk, period);
        auto& rstn = dig.logicSignal("rn/rstn", Logic::Zero);
        dig.noteExternalDriver(rstn);
        auto& stim = dig.add<StimulusSchedule>(dig, "rn/stim");
        stim.at(3 * period / 2, rstn, Logic::One);

        Bus q = dig.bus("rn/lfsr_q", 8, Logic::Zero);
        dig.add<Lfsr>(dig, "rn/lfsr", clk, q, /*taps=*/0xB8,
                      /*seed=*/1 + (rng.next() & 0x7F), &rstn);

        std::vector<LogicSignal*> pool;
        for (int b = 0; b < 8; ++b) {
            pool.push_back(&q.bit(b));
        }
        const auto pick = [&]() -> LogicSignal& {
            return *pool[rng.below(pool.size())];
        };

        const int gates = 8 + static_cast<int>(rng.below(7));
        static constexpr GateKind kKinds[] = {GateKind::And,  GateKind::Or,
                                              GateKind::Nand, GateKind::Nor,
                                              GateKind::Xor,  GateKind::Xnor,
                                              GateKind::Buf,  GateKind::Not};
        for (int i = 0; i < gates; ++i) {
            const GateKind kind = kKinds[rng.below(8)];
            std::size_t fanin = 2 + rng.below(2);
            if (kind == GateKind::Buf || kind == GateKind::Not) {
                fanin = 1;
            } else if (kind == GateKind::Xor || kind == GateKind::Xnor) {
                fanin = 2; // keep parity semantics identical across backends
            }
            std::vector<LogicSignal*> in;
            for (std::size_t k = 0; k < fanin; ++k) {
                in.push_back(&pick());
            }
            auto& out =
                dig.logicSignal("rn/g" + std::to_string(i), Logic::Zero);
            dig.add<Gate>(dig, "rn/gate" + std::to_string(i), kind, in, out);
            pool.push_back(&out);

            if (i % 5 == 2) { // instrument some interconnects with saboteurs
                auto& sabOut =
                    dig.logicSignal("rn/g" + std::to_string(i) + "_sab", Logic::Zero);
                auto& sab = dig.add<fault::DigitalSaboteur>(
                    dig, "rn/sab" + std::to_string(i), out, sabOut);
                addDigitalSaboteur(sab);
                pool.push_back(&sabOut);
            }
        }
        const int ffs = 2 + static_cast<int>(rng.below(3));
        for (int i = 0; i < ffs; ++i) {
            auto& d = pick();
            auto& ffq = dig.logicSignal("rn/ff" + std::to_string(i) + "_q", Logic::Zero);
            dig.add<DFlipFlop>(dig, "rn/ff" + std::to_string(i), clk, d, ffq, &rstn);
            pool.push_back(&ffq);
        }

        std::set<std::string> observed;
        while (observed.size() < 4) {
            observed.insert(pick().name());
        }
        for (const std::string& name : observed) {
            observeDigital(name);
        }
        observeAllState();
        setDuration(600 * kNanosecond);
    }
};

TEST(BatchFuzz, RandomNetlistsMatchEventDriven)
{
    int lanesSeen = 0;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        const auto factory = [seed] {
            return std::make_unique<RandomNetlistTestbench>(seed);
        };
        Rng rng(0xFA11 + seed);
        const RandomNetlistTestbench probe(seed);
        std::vector<fault::FaultSpec> faults{fault::FaultSpec{}};
        const auto randomTime = [&rng] {
            return (40 + static_cast<SimTime>(rng.below(520))) * kNanosecond;
        };
        for (const std::string& sab : probe.digitalSaboteurNames()) {
            faults.emplace_back(fault::StuckAtFault{
                sab, rng.chance(0.5) ? Logic::One : Logic::Zero, randomTime(),
                rng.chance(0.5) ? 0 : static_cast<SimTime>(rng.below(180)) * kNanosecond});
        }
        const auto& hooks = probe.sim().digital().instrumentation().all();
        std::vector<std::string> hookNames;
        hookNames.reserve(hooks.size());
        for (const auto& [name, hook] : hooks) {
            hookNames.push_back(name);
        }
        for (int i = 0; i < 4 && !hookNames.empty(); ++i) {
            const std::string& target = hookNames[rng.below(hookNames.size())];
            const int width = probe.sim().digital().instrumentation().hook(target).width;
            faults.emplace_back(fault::BitFlipFault{
                target, static_cast<int>(rng.below(static_cast<std::uint64_t>(width))),
                randomTime()});
        }
        ASSERT_GE(faults.size(), 4u) << "seed " << seed;

        const CampaignOutput event =
            runOne(factory, faults, 1, false, false, "fuzz" + std::to_string(seed));
        const CampaignOutput batch =
            runOne(factory, faults, 1, true, false, "fuzz" + std::to_string(seed));
        ASSERT_EQ(stripBatchLane(batch.journal), event.journal)
            << "seed " << seed << ": journal diverged";
        ASSERT_EQ(batch.summary, event.summary) << "seed " << seed;
        for (std::size_t i = 0; i < event.report.runs.size(); ++i) {
            ASSERT_EQ(batch.report.runs[i].outcome, event.report.runs[i].outcome)
                << "seed " << seed << " fault " << i;
        }
        if (batch.journal.find("\"batch_lane\"") != std::string::npos) {
            ++lanesSeen;
        }
    }
    // The generator emits only word-library components, so the overwhelming
    // majority of seeds must actually batch — equality alone could be
    // trivially satisfied by a backend that always falls back.
    EXPECT_GE(lanesSeen, 95) << "batch backend fell back on too many seeds";
}

// ---------------------------------------------------------------------------
// Journal resume

// Interrupting a batched campaign after k faults and resuming with the full
// list must reproduce the uninterrupted journal byte-for-byte: restored rows
// keep their recorded batch_lane, fresh rows are assigned the same lanes the
// uninterrupted run would have used (lane assignment is restoration-blind).
TEST(BatchCampaign, ResumeReproducesUninterruptedRun)
{
    const auto factory = [] { return std::make_unique<duts::DigitalDutTestbench>(); };
    const auto faults = digitalDutFaults();
    const CampaignOutput reference =
        runOne(factory, faults, 1, true, false, "resume_ref");
    ASSERT_NE(reference.journal.find("\"batch_lane\""), std::string::npos);

    const std::string path = ::testing::TempDir() + "gfi_batch_resume.jsonl";
    std::remove(path.c_str());
    const std::size_t k = faults.size() / 2;
    {
        CampaignRunner partial(factory);
        partial.setWorkers(1);
        partial.setRecordTiming(false);
        partial.setJournalPath(path);
        partial.setBatchBackend(true);
        partial.setFaultCollapsing(false);
        const std::vector<fault::FaultSpec> prefix(faults.begin(),
                                                   faults.begin() + static_cast<long>(k));
        (void)partial.run(prefix);
    }
    ASSERT_FALSE(slurp(path).empty());

    CampaignRunner resumed(factory);
    resumed.setWorkers(1);
    resumed.setRecordTiming(false);
    resumed.setJournalPath(path);
    resumed.setBatchBackend(true);
    resumed.setFaultCollapsing(false);
    const CampaignReport report = resumed.run(faults);
    std::size_t restored = 0;
    for (const RunResult& r : report.runs) {
        restored += r.diagnostics.fromJournal ? 1u : 0u;
    }
    EXPECT_GE(restored, k - 1); // golden may or may not re-run
    EXPECT_EQ(slurp(path), reference.journal)
        << "resumed journal differs from the uninterrupted run";
    std::remove(path.c_str());

    ASSERT_EQ(report.runs.size(), reference.report.runs.size());
    for (std::size_t i = 0; i < report.runs.size(); ++i) {
        EXPECT_EQ(report.runs[i].outcome, reference.report.runs[i].outcome)
            << "fault " << i;
        EXPECT_EQ(report.runs[i].diagnostics.batchLane,
                  reference.report.runs[i].diagnostics.batchLane)
            << "fault " << i << ": lane provenance not resume-invariant";
    }
}

// ---------------------------------------------------------------------------
// Word-model compile + eligibility unit checks

TEST(BatchWordModel, DigitalDutCompilesAndClassifiesEligibility)
{
    const duts::DigitalDutTestbench probe;
    const batch::CompileResult compiled = batch::compileWordModel(probe);
    ASSERT_NE(compiled.model, nullptr) << compiled.reason;
    const SimTime t = 2 * kMicrosecond;
    const auto eligible = [&](const fault::FaultSpec& f) {
        return batch::faultEligibility(*compiled.model, f);
    };
    EXPECT_TRUE(eligible(fault::StuckAtFault{"sab/enable", Logic::One, t, 0}).eligible);
    EXPECT_TRUE(eligible(fault::BitFlipFault{"dut/cnt", 0, t}).eligible);
    EXPECT_TRUE(eligible(fault::FsmTransitionFault{"dut/fsm", 2, t}).eligible);
    const auto pulse =
        eligible(fault::DigitalPulseFault{"sab/enable", t, 25 * kNanosecond});
    EXPECT_FALSE(pulse.eligible);
    EXPECT_FALSE(pulse.reason.empty());
    const auto stuckX = eligible(fault::StuckAtFault{"sab/enable", Logic::X, t, 0});
    EXPECT_FALSE(stuckX.eligible);
    const auto unknown = eligible(fault::BitFlipFault{"no/such", 0, t});
    EXPECT_FALSE(unknown.eligible);
}

} // namespace
} // namespace gfi::campaign
