// Tests for the SPICE-like netlist front-end.

#include "analog/netlist.hpp"
#include "analog/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gfi::analog {
namespace {

TEST(SpiceNumber, SuffixParsing)
{
    EXPECT_DOUBLE_EQ(parseSpiceNumber("1"), 1.0);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("4.7k"), 4700.0);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("100p"), 100e-12);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("2meg"), 2e6);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("2MEG"), 2e6);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("3.3n"), 3.3e-9);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("1m"), 1e-3);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("-5u"), -5e-6);
    EXPECT_DOUBLE_EQ(parseSpiceNumber("10f"), 10e-15);
    EXPECT_THROW((void)parseSpiceNumber("abc"), std::runtime_error);
    EXPECT_THROW((void)parseSpiceNumber("1x"), std::runtime_error);
    EXPECT_THROW((void)parseSpiceNumber(""), std::runtime_error);
}

TEST(Netlist, VoltageDividerDc)
{
    AnalogSystem sys;
    const auto result = parseNetlist(R"(
* a classic divider
V1 in 0 10
R1 in mid 1k
R2 mid 0 3k
.end
)",
                                     sys);
    EXPECT_EQ(result.componentCount, 3);
    TransientSolver solver(sys);
    solver.solveDc();
    EXPECT_NEAR(sys.voltage(sys.node("mid")), 7.5, 1e-6);
}

TEST(Netlist, SineSourceAndComments)
{
    AnalogSystem sys;
    parseNetlist(R"(
V1 osc 0 SIN(2.5 2.5 1meg)  ; 1 MHz, 0..5 V
R1 osc 0 10k
.end
)",
                 sys);
    TransientSolver solver(sys);
    solver.solveDc();
    solver.advanceTo(0.25e-6); // quarter period: peak
    EXPECT_NEAR(sys.voltage(sys.node("osc")), 5.0, 0.01);
}

TEST(Netlist, PulseSourceShape)
{
    AnalogSystem sys;
    parseNetlist(R"(
V1 n 0 PULSE(0 3 1u 100n 500n 100n)
RL n 0 1k
)",
                 sys);
    TransientSolver solver(sys);
    solver.solveDc();
    solver.advanceTo(1.3e-6);
    EXPECT_NEAR(sys.voltage(sys.node("n")), 3.0, 1e-3);
    solver.advanceTo(2.0e-6);
    EXPECT_NEAR(sys.voltage(sys.node("n")), 0.0, 1e-3);
}

TEST(Netlist, ControlledSourcesAndCurrent)
{
    AnalogSystem sys;
    parseNetlist(R"(
I1 0 a 2m
R1 a 0 1k
G1 0 b a 0 1m
R2 b 0 1k
E1 c 0 b 0 3
R3 c 0 1k
)",
                 sys);
    TransientSolver solver(sys);
    solver.solveDc();
    // SPICE I card: 2 mA delivered into node "a" (the n- terminal).
    EXPECT_NEAR(sys.voltage(sys.node("a")), 2.0, 1e-6);
    // G1 delivers gm * V(a) into node "b" (its n- terminal).
    EXPECT_NEAR(sys.voltage(sys.node("b")), 2.0, 1e-6);
    EXPECT_NEAR(sys.voltage(sys.node("c")), 6.0, 1e-6);
}

TEST(Netlist, DiodeCard)
{
    AnalogSystem sys;
    parseNetlist(R"(
V1 in 0 5
R1 in d 1k
D1 d 0
)",
                 sys);
    TransientSolver solver(sys);
    solver.solveDc();
    const double v = sys.voltage(sys.node("d"));
    EXPECT_GT(v, 0.5);
    EXPECT_LT(v, 0.9);
}

TEST(Netlist, SaboteurCardRegistersInjectionPoint)
{
    AnalogSystem sys;
    const auto result = parseNetlist(R"(
V1 in 0 0
R1 in n 1k
C1 n 0 1n
XSAB n
)",
                                     sys);
    ASSERT_EQ(result.saboteurs.size(), 1u);
    fault::CurrentSaboteur* sab = result.saboteurs.at("XSAB");
    ASSERT_NE(sab, nullptr);
    sab->arm(1e-6, fault::TrapezoidPulse(10e-3, 100e-12, 300e-12, 500e-12));

    TransientSolver solver(sys);
    solver.solveDc();
    solver.advanceTo(1.05e-6);
    // 3 pC into ~1 nF (R1 discharges slowly at this timescale).
    EXPECT_NEAR(sys.voltage(sys.node("n")), 3e-3, 5e-4);
}

TEST(Netlist, ErrorsCarryLineNumbers)
{
    AnalogSystem sys;
    try {
        parseNetlist("R1 a b 1k\nQ1 x y z\n", sys);
        FAIL() << "expected parse error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
    AnalogSystem sys2;
    EXPECT_THROW(parseNetlist("R1 a b\n", sys2), std::runtime_error);
    AnalogSystem sys3;
    EXPECT_THROW(parseNetlist("V1 a 0 SIN(1)\n", sys3), std::runtime_error);
}

TEST(Netlist, StopsAtEndCard)
{
    AnalogSystem sys;
    const auto result = parseNetlist("R1 a 0 1k\n.end\nR2 b 0 2k\n", sys);
    EXPECT_EQ(result.componentCount, 1);
}

} // namespace
} // namespace gfi::analog
