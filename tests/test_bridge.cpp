// Tests for the mixed-signal layer: A->D and D->A bridges and the lockstep
// synchronization between the digital kernel and the analog solver.

#include "ams/bridge.hpp"
#include "analog/passive.hpp"
#include "analog/sources.hpp"
#include "digital/sequential.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gfi::ams {
namespace {

using digital::Logic;

TEST(AtoD, SineBecomesSquareWave)
{
    MixedSimulator sim;
    auto& ana = sim.analog();
    const analog::NodeId n = ana.node("sine");
    ana.add<analog::SineVoltage>(ana, "vs", n, analog::kGround, 2.5, 2.5, 1e6);
    ana.add<analog::Resistor>(ana, "rl", n, analog::kGround, 1e4);
    auto& sq = sim.digital().logicSignal("sq", Logic::U);
    AtoDBridge bridge(sim, "dig", n, sq, 2.5);

    std::vector<SimTime> rises;
    digital::SignalWatch::onEvent(sq, [&] {
        if (digital::toX01(sq.value()) == Logic::One && digital::toX01(sq.lastValue()) == Logic::Zero) {
            rises.push_back(sim.digital().scheduler().now());
        }
    });
    sim.run(fromSeconds(5.2e-6)); // ~5 periods
    ASSERT_GE(rises.size(), 4u);
    // Rising crossings of sin at offset: every 1 us starting at 1 us
    // (sin starts rising from 2.5 V at t=0, so first *rising* crossing after
    // a full period).
    for (std::size_t i = 1; i < rises.size(); ++i) {
        EXPECT_NEAR(toSeconds(rises[i] - rises[i - 1]), 1e-6, 2e-9);
    }
}

TEST(AtoD, InitialValueFromDcPoint)
{
    MixedSimulator sim;
    auto& ana = sim.analog();
    const analog::NodeId n = ana.node("hi");
    ana.add<analog::VoltageSource>(ana, "vs", n, analog::kGround, 4.0);
    auto& out = sim.digital().logicSignal("out", Logic::U);
    AtoDBridge bridge(sim, "dig", n, out, 2.5);
    sim.elaborate();
    EXPECT_EQ(out.value(), Logic::One);
}

TEST(AtoD, HysteresisSuppressesChatter)
{
    // A sine of amplitude 0.05 V around the threshold with 0.2 V hysteresis
    // must never toggle the output.
    MixedSimulator sim;
    auto& ana = sim.analog();
    const analog::NodeId n = ana.node("noisy");
    ana.add<analog::SineVoltage>(ana, "vs", n, analog::kGround, 2.5, 0.05, 1e6);
    ana.add<analog::Resistor>(ana, "rl", n, analog::kGround, 1e4);
    auto& out = sim.digital().logicSignal("out", Logic::U);
    AtoDBridge bridge(sim, "dig", n, out, 2.5, /*hysteresis=*/0.2);
    sim.elaborate(); // the initial DC-derived force is not chatter
    int toggles = 0;
    digital::SignalWatch::onEvent(out, [&] { ++toggles; });
    sim.run(fromSeconds(3e-6));
    EXPECT_EQ(toggles, 0);
}

TEST(DtoA, DrivesLevelsOnDigitalEvents)
{
    MixedSimulator sim;
    auto& dig = sim.digital();
    auto& ctl = dig.logicSignal("ctl", Logic::Zero);
    const analog::NodeId n = sim.analog().node("drv");
    sim.analog().add<analog::Resistor>(sim.analog(), "rl", n, analog::kGround, 1e4);
    DtoABridge bridge(sim, "dac", ctl, n, 0.0, 3.3);

    dig.scheduler().scheduleAction(kMicrosecond, [&ctl] { ctl.forceValue(Logic::One); });
    sim.run(fromSeconds(0.5e-6));
    EXPECT_NEAR(sim.analog().voltage(n), 0.0, 1e-6);
    sim.run(fromSeconds(1.5e-6));
    EXPECT_NEAR(sim.analog().voltage(n), 3.3, 1e-6);
}

TEST(DtoA, SlewRampsLinearly)
{
    MixedSimulator sim;
    auto& dig = sim.digital();
    auto& ctl = dig.logicSignal("ctl", Logic::Zero);
    const analog::NodeId n = sim.analog().node("drv");
    sim.analog().add<analog::Resistor>(sim.analog(), "rl", n, analog::kGround, 1e4);
    DtoABridge bridge(sim, "dac", ctl, n, 0.0, 2.0, /*slew=*/1e-6);

    dig.scheduler().scheduleAction(kMicrosecond, [&ctl] { ctl.forceValue(Logic::One); });
    sim.run(fromSeconds(1.5e-6)); // halfway up the ramp
    EXPECT_NEAR(sim.analog().voltage(n), 1.0, 0.05);
    sim.run(fromSeconds(3e-6));
    EXPECT_NEAR(sim.analog().voltage(n), 2.0, 1e-6);
}

TEST(CurrentDriver, ChargesPumpIntoCapacitor)
{
    // UP high for 1 us at 1 mA into 1 uF -> 1 mV ramp; DOWN discharges.
    MixedSimulator sim;
    auto& dig = sim.digital();
    auto& up = dig.logicSignal("up", Logic::Zero);
    auto& down = dig.logicSignal("down", Logic::Zero);
    const analog::NodeId n = sim.analog().node("cp");
    sim.analog().add<analog::Capacitor>(sim.analog(), "c", n, analog::kGround, 1e-6);
    sim.analog().add<analog::Resistor>(sim.analog(), "leak", n, analog::kGround, 1e9);
    DigitalCurrentDriver cp(sim, "cp", {&up, &down}, n,
                            [](const std::vector<Logic>& v) {
                                const double u = digital::toX01(v[0]) == Logic::One ? 1.0 : 0.0;
                                const double d = digital::toX01(v[1]) == Logic::One ? 1.0 : 0.0;
                                return 1e-3 * (u - d);
                            });
    dig.scheduler().scheduleAction(0, [&up] { up.forceValue(Logic::One); });
    dig.scheduler().scheduleAction(kMicrosecond, [&up] { up.forceValue(Logic::Zero); });
    sim.run(2 * kMicrosecond);
    EXPECT_NEAR(sim.analog().voltage(n), 1e-3, 2e-5);

    dig.scheduler().scheduleAction(3 * kMicrosecond, [&down] { down.forceValue(Logic::One); });
    dig.scheduler().scheduleAction(fromSeconds(3.5e-6), [&down] { down.forceValue(Logic::Zero); });
    sim.run(4 * kMicrosecond);
    EXPECT_NEAR(sim.analog().voltage(n), 0.5e-3, 2e-5);
}

TEST(VoltageDriver, MapsCodeToLevel)
{
    MixedSimulator sim;
    auto& dig = sim.digital();
    digital::Bus code = dig.bus("code", 4, Logic::Zero);
    const analog::NodeId n = sim.analog().node("dac");
    sim.analog().add<analog::Resistor>(sim.analog(), "rl", n, analog::kGround, 1e4);
    std::vector<digital::LogicSignal*> bits(code.bits().begin(), code.bits().end());
    DigitalVoltageDriver dac(sim, "dac", bits, n, [](const std::vector<Logic>& v) {
        std::uint64_t c = 0;
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (digital::toX01(v[i]) == Logic::One) {
                c |= 1ull << i;
            }
        }
        return 0.25 * static_cast<double>(c);
    });
    dig.scheduler().scheduleAction(kMicrosecond, [code] { code.forceUint(10); });
    sim.run(2 * kMicrosecond);
    EXPECT_NEAR(sim.analog().voltage(n), 2.5, 1e-6);
}

TEST(MixedSync, DigitalDividerDrivenByAnalogOscillator)
{
    // Full round trip: analog sine -> digitizer -> digital divider; the
    // divided clock has exactly N sine periods per output period.
    MixedSimulator sim;
    auto& ana = sim.analog();
    const analog::NodeId n = ana.node("osc");
    ana.add<analog::SineVoltage>(ana, "vs", n, analog::kGround, 2.5, 2.5, 10e6);
    ana.add<analog::Resistor>(ana, "rl", n, analog::kGround, 1e4);
    auto& clk = sim.digital().logicSignal("clk", Logic::U);
    AtoDBridge bridge(sim, "dig", n, clk, 2.5);
    auto& div = sim.digital().logicSignal("div", Logic::U);
    sim.digital().add<digital::ClockDivider>(sim.digital(), "div4", clk, div, 4);

    std::vector<SimTime> rises;
    digital::SignalWatch::onEvent(div, [&] {
        if (digital::toX01(div.value()) == Logic::One &&
            digital::toX01(div.lastValue()) == Logic::Zero) {
            rises.push_back(sim.digital().scheduler().now());
        }
    });
    sim.run(fromSeconds(2.05e-6)); // 20 sine periods -> 5 divided periods
    ASSERT_GE(rises.size(), 3u);
    for (std::size_t i = 1; i < rises.size(); ++i) {
        EXPECT_NEAR(toSeconds(rises[i] - rises[i - 1]), 4e-7, 2e-9);
    }
}

TEST(MixedSync, PureDigitalDesignStillRuns)
{
    MixedSimulator sim;
    auto& clk = sim.digital().logicSignal("clk", Logic::Zero);
    sim.digital().add<digital::ClockGen>(sim.digital(), "cg", clk, 10 * kNanosecond);
    int edges = 0;
    digital::SignalWatch::onEvent(clk, [&] { ++edges; });
    sim.run(kMicrosecond);
    EXPECT_GT(edges, 150);
}

} // namespace
} // namespace gfi::ams
