// Unit tests for the nine-valued logic algebra.

#include "digital/logic.hpp"

#include <gtest/gtest.h>

namespace gfi::digital {
namespace {

TEST(Logic, CharRoundTrip)
{
    const char chars[] = "UX01ZWLH-";
    for (char c : chars) {
        if (c == '\0') {
            break;
        }
        EXPECT_EQ(toChar(logicFromChar(c)), c);
    }
}

TEST(Logic, LowercaseParsing)
{
    EXPECT_EQ(logicFromChar('u'), Logic::U);
    EXPECT_EQ(logicFromChar('z'), Logic::Z);
    EXPECT_EQ(logicFromChar('h'), Logic::H);
}

TEST(Logic, UnknownCharIsX)
{
    EXPECT_EQ(logicFromChar('?'), Logic::X);
    EXPECT_EQ(logicFromChar('7'), Logic::X);
}

TEST(Logic, ResolutionCommutes)
{
    for (int a = 0; a < kLogicCount; ++a) {
        for (int b = 0; b < kLogicCount; ++b) {
            EXPECT_EQ(resolve(static_cast<Logic>(a), static_cast<Logic>(b)),
                      resolve(static_cast<Logic>(b), static_cast<Logic>(a)))
                << "a=" << a << " b=" << b;
        }
    }
}

TEST(Logic, ResolutionIdentityWithZ)
{
    // 'Z' is the identity element for every driver except it keeps weak levels.
    EXPECT_EQ(resolve(Logic::Zero, Logic::Z), Logic::Zero);
    EXPECT_EQ(resolve(Logic::One, Logic::Z), Logic::One);
    EXPECT_EQ(resolve(Logic::Z, Logic::Z), Logic::Z);
    EXPECT_EQ(resolve(Logic::L, Logic::Z), Logic::L);
    EXPECT_EQ(resolve(Logic::H, Logic::Z), Logic::H);
}

TEST(Logic, ContentionGivesX)
{
    EXPECT_EQ(resolve(Logic::Zero, Logic::One), Logic::X);
    EXPECT_EQ(resolve(Logic::One, Logic::Zero), Logic::X);
}

TEST(Logic, StrongBeatsWeak)
{
    EXPECT_EQ(resolve(Logic::Zero, Logic::H), Logic::Zero);
    EXPECT_EQ(resolve(Logic::One, Logic::L), Logic::One);
    EXPECT_EQ(resolve(Logic::L, Logic::H), Logic::W);
}

TEST(Logic, UDominates)
{
    for (int a = 0; a < kLogicCount; ++a) {
        EXPECT_EQ(resolve(Logic::U, static_cast<Logic>(a)), Logic::U);
    }
}

TEST(Logic, AndTruthTable)
{
    EXPECT_EQ(logicAnd(Logic::One, Logic::One), Logic::One);
    EXPECT_EQ(logicAnd(Logic::One, Logic::Zero), Logic::Zero);
    EXPECT_EQ(logicAnd(Logic::Zero, Logic::X), Logic::Zero); // 0 dominates
    EXPECT_EQ(logicAnd(Logic::One, Logic::X), Logic::X);
    EXPECT_EQ(logicAnd(Logic::H, Logic::One), Logic::One); // weak high counts as 1
    EXPECT_EQ(logicAnd(Logic::L, Logic::One), Logic::Zero);
}

TEST(Logic, OrTruthTable)
{
    EXPECT_EQ(logicOr(Logic::Zero, Logic::Zero), Logic::Zero);
    EXPECT_EQ(logicOr(Logic::One, Logic::X), Logic::One); // 1 dominates
    EXPECT_EQ(logicOr(Logic::Zero, Logic::X), Logic::X);
    EXPECT_EQ(logicOr(Logic::L, Logic::H), Logic::One);
}

TEST(Logic, XorTruthTable)
{
    EXPECT_EQ(logicXor(Logic::One, Logic::One), Logic::Zero);
    EXPECT_EQ(logicXor(Logic::One, Logic::Zero), Logic::One);
    EXPECT_EQ(logicXor(Logic::X, Logic::One), Logic::X);
    EXPECT_EQ(logicXor(Logic::Zero, Logic::Z), Logic::X);
}

TEST(Logic, NotNormalizes)
{
    EXPECT_EQ(logicNot(Logic::H), Logic::Zero);
    EXPECT_EQ(logicNot(Logic::L), Logic::One);
    EXPECT_EQ(logicNot(Logic::Z), Logic::X);
    EXPECT_EQ(logicNot(Logic::U), Logic::U);
}

TEST(Logic, ToX01)
{
    EXPECT_EQ(toX01(Logic::H), Logic::One);
    EXPECT_EQ(toX01(Logic::L), Logic::Zero);
    EXPECT_EQ(toX01(Logic::W), Logic::X);
    EXPECT_EQ(toX01(Logic::DC), Logic::X);
    EXPECT_EQ(toX01(Logic::U), Logic::U);
}

TEST(Logic, FlipIsSelfInverseOnKnownValues)
{
    EXPECT_EQ(flipped(Logic::Zero), Logic::One);
    EXPECT_EQ(flipped(Logic::One), Logic::Zero);
    EXPECT_EQ(flipped(flipped(Logic::One)), Logic::One);
    EXPECT_EQ(flipped(Logic::Z), Logic::X);
}

TEST(Logic, Known01Predicate)
{
    EXPECT_TRUE(isKnown01(Logic::Zero));
    EXPECT_TRUE(isKnown01(Logic::H));
    EXPECT_FALSE(isKnown01(Logic::X));
    EXPECT_FALSE(isKnown01(Logic::Z));
    EXPECT_FALSE(isKnown01(Logic::U));
}

// Property: resolve is associative on the 1164 table (required for multi-driver
// nets to have a well-defined value regardless of evaluation order).
TEST(Logic, ResolutionAssociative)
{
    for (int a = 0; a < kLogicCount; ++a) {
        for (int b = 0; b < kLogicCount; ++b) {
            for (int c = 0; c < kLogicCount; ++c) {
                const auto la = static_cast<Logic>(a);
                const auto lb = static_cast<Logic>(b);
                const auto lc = static_cast<Logic>(c);
                EXPECT_EQ(resolve(resolve(la, lb), lc), resolve(la, resolve(lb, lc)))
                    << a << "," << b << "," << c;
            }
        }
    }
}

} // namespace
} // namespace gfi::digital
