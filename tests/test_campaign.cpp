// End-to-end tests of the campaign engine on the digital DUT: golden runs,
// fault arming, outcome classification and the error-propagation model —
// the full Figure 2 flow of the paper.

#include "core/campaign.hpp"
#include "duts/digital_dut.hpp"

#include <gtest/gtest.h>

namespace gfi::campaign {
namespace {

fault::TestbenchFactory dutFactory()
{
    return [] { return std::make_unique<duts::DigitalDutTestbench>(); };
}

TEST(Campaign, GoldenRunIsDeterministic)
{
    CampaignRunner r1(dutFactory());
    CampaignRunner r2(dutFactory());
    r1.runGolden();
    r2.runGolden();
    const auto& t1 = r1.golden().recorder().digitalTrace("dut/out[0]");
    const auto& t2 = r2.golden().recorder().digitalTrace("dut/out[0]");
    ASSERT_EQ(t1.events.size(), t2.events.size());
    for (std::size_t i = 0; i < t1.events.size(); ++i) {
        EXPECT_EQ(t1.events[i].first, t2.events[i].first);
        EXPECT_EQ(t1.events[i].second, t2.events[i].second);
    }
}

TEST(Campaign, GoldenFaultIsSilent)
{
    CampaignRunner runner(dutFactory());
    const RunResult r = runner.runOne(fault::FaultSpec{});
    EXPECT_EQ(r.outcome, Outcome::Silent);
    EXPECT_TRUE(r.erredSignals.empty());
}

TEST(Campaign, BitFlipInOutputRegisterIsObservable)
{
    CampaignRunner runner(dutFactory());
    // Flip an output-register bit mid-cycle (not on a clock edge, where the
    // simultaneous capture would legitimately mask it): visible until the
    // next clock edge overwrites it -> transient error.
    fault::BitFlipFault f{"dut/out_reg", 4, 2 * kMicrosecond + 7 * kNanosecond};
    const RunResult r = runner.runOne(fault::FaultSpec{f});
    EXPECT_NE(r.outcome, Outcome::Silent);
    EXPECT_GE(r.firstOutputError, f.time);
}

TEST(Campaign, StuckAtEnableIsFailure)
{
    CampaignRunner runner(dutFactory());
    // Permanently sticking the counter enable low desynchronizes the counter
    // for the rest of the run: a failure, not a transient.
    fault::StuckAtFault f{"sab/enable", digital::Logic::Zero, kMicrosecond, 0};
    const RunResult r = runner.runOne(fault::FaultSpec{f});
    EXPECT_EQ(r.outcome, Outcome::Failure);
}

TEST(Campaign, LateCounterFlipIsLatentOrWorse)
{
    CampaignRunner runner(dutFactory());
    // Flip a counter bit in the very last cycle: the corruption cannot reach
    // the registered outputs before the run ends, but the stored state
    // differs -> latent (or transient if it slipped through).
    const SimTime tEnd = duts::DigitalDutConfig{}.duration;
    fault::BitFlipFault f{"dut/cnt", 7, tEnd - 10 * kNanosecond};
    const RunResult r = runner.runOne(fault::FaultSpec{f});
    EXPECT_NE(r.outcome, Outcome::Silent);
    if (r.outcome == Outcome::Latent) {
        EXPECT_FALSE(r.corruptedState.empty());
        EXPECT_TRUE(r.erredSignals.empty());
    }
}

TEST(Campaign, FsmTransitionFaultPerturbsBusyFlag)
{
    CampaignRunner runner(dutFactory());
    // Forcing the FSM into each state at the same instant: at least one of
    // them must differ from the golden trajectory and disturb an output
    // (forcing the state it would have reached anyway is legitimately silent).
    int nonSilent = 0;
    for (int state = 0; state < 4; ++state) {
        fault::FsmTransitionFault f{"dut/fsm", state, 2 * kMicrosecond + 7 * kNanosecond};
        const RunResult r = runner.runOne(fault::FaultSpec{f});
        nonSilent += r.outcome != Outcome::Silent ? 1 : 0;
    }
    EXPECT_GE(nonSilent, 2);
}

TEST(Campaign, SetPulseOnDataPath)
{
    CampaignRunner runner(dutFactory());
    fault::DigitalPulseFault f{"sab/data", 2 * kMicrosecond, 30 * kNanosecond};
    const RunResult r = runner.runOne(fault::FaultSpec{f});
    EXPECT_NE(r.outcome, Outcome::Silent);
}

TEST(Campaign, UnknownTargetIsContainedAsSimError)
{
    // armFault's std::invalid_argument must not escape the campaign loop: an
    // unknown target is a classified data point with the message preserved.
    CampaignRunner runner(dutFactory());
    const RunResult r1 = runner.runOne(fault::FaultSpec{fault::BitFlipFault{"nope", 0, 0}});
    EXPECT_EQ(r1.outcome, Outcome::SimError);
    EXPECT_NE(r1.diagnostics.error.find("nope"), std::string::npos);
    const RunResult r2 = runner.runOne(
        fault::FaultSpec{fault::DigitalPulseFault{"nope", 0, kNanosecond}});
    EXPECT_EQ(r2.outcome, Outcome::SimError);
    EXPECT_NE(r2.diagnostics.error.find("unknown"), std::string::npos);
}

TEST(Campaign, ReportHistogramAndTables)
{
    CampaignRunner runner(dutFactory());
    std::vector<fault::FaultSpec> faults{
        fault::FaultSpec{},
        fault::FaultSpec{fault::BitFlipFault{"dut/out_reg", 0, 2 * kMicrosecond}},
        fault::FaultSpec{fault::StuckAtFault{"sab/enable", digital::Logic::Zero,
                                             kMicrosecond, 0}},
    };
    const CampaignReport report = runner.run(faults);
    ASSERT_EQ(report.runs.size(), 3u);
    const auto h = report.histogram();
    int total = 0;
    for (const auto& [outcome, n] : h) {
        total += n;
    }
    EXPECT_EQ(total, 3);
    const std::string summary = report.summaryTable();
    EXPECT_NE(summary.find("silent"), std::string::npos);
    EXPECT_NE(summary.find("total"), std::string::npos);
    EXPECT_NE(report.detailTable().find("bit-flip"), std::string::npos);
}

TEST(Campaign, ProgressCallbackInvoked)
{
    CampaignRunner runner(dutFactory());
    int calls = 0;
    runner.run({fault::FaultSpec{}, fault::FaultSpec{}},
               [&](std::size_t, const RunResult&) { ++calls; });
    EXPECT_EQ(calls, 2);
}

TEST(Campaign, PropagationModelAccumulates)
{
    PropagationModel model;
    model.record("reg_a", {"out1", "out2"});
    model.record("reg_a", {"out1"});
    model.record("reg_b", {});
    EXPECT_EQ(model.runsFor("reg_a"), 2);
    EXPECT_EQ(model.reaches("reg_a", "out1"), 2);
    EXPECT_EQ(model.reaches("reg_a", "out2"), 1);
    EXPECT_EQ(model.reaches("reg_b", "out1"), 0);
    const std::string table = model.table();
    EXPECT_NE(table.find("reg_a"), std::string::npos);
    EXPECT_NE(table.find("out2"), std::string::npos);
}

TEST(Campaign, TargetOfExtractsNames)
{
    EXPECT_EQ(targetOf(fault::FaultSpec{}), "golden");
    EXPECT_EQ(targetOf(fault::FaultSpec{fault::BitFlipFault{"r", 0, 0}}), "r");
    EXPECT_EQ(targetOf(fault::FaultSpec{fault::StuckAtFault{"s", digital::Logic::One, 0, 0}}),
              "s");
    EXPECT_EQ(targetOf(fault::FaultSpec{fault::ParametricFault{"p", 2.0, 0}}), "p");
}

TEST(Campaign, InstrumentationEnumerationForFaultLists)
{
    CampaignRunner runner(dutFactory());
    auto tb = runner.makeTestbench();
    const auto names = tb->sim().digital().instrumentation().names();
    // LFSR, FSM, counter, output register (+ divider-free DUT has no more).
    EXPECT_GE(names.size(), 4u);
    EXPECT_GE(tb->sim().digital().instrumentation().totalBits(), 20);
    EXPECT_EQ(tb->digitalSaboteurNames().size(), 2u);
}

} // namespace
} // namespace gfi::campaign
