// Tests for the behavioral op-amp macro and the inverting-amplifier DUT:
// closed-loop gain, SET transients on internal nodes, parametric faults.

#include "analog/opamp.hpp"
#include "analog/solver.hpp"
#include "analog/sources.hpp"
#include "core/campaign.hpp"
#include "duts/opamp_dut.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gfi::duts {
namespace {

TEST(OpAmpMacro, OpenLoopDcGain)
{
    analog::AnalogSystem sys;
    const analog::NodeId in = sys.node("in");
    const analog::NodeId out = sys.node("out");
    // Small input keeps the tanh output buffer in its linear region.
    sys.add<analog::VoltageSource>(sys, "vs", in, analog::kGround, 2e-6);
    analog::OpAmp amp(sys, "amp", in, analog::kGround, out);
    sys.add<analog::Resistor>(sys, "rl", out, analog::kGround, 1e6);
    analog::TransientSolver solver(sys);
    solver.solveDc();
    // 2 uV * 1e5 = 0.2 V at the pole node, buffered to the output.
    EXPECT_NEAR(sys.voltage(out), 0.2, 0.005);
}

TEST(OpAmpMacro, OutputSaturatesAtSwing)
{
    analog::AnalogSystem sys;
    const analog::NodeId in = sys.node("in");
    const analog::NodeId out = sys.node("out");
    sys.add<analog::VoltageSource>(sys, "vs", in, analog::kGround, 1.0);
    analog::OpAmp amp(sys, "amp", in, analog::kGround, out);
    sys.add<analog::Resistor>(sys, "rl", out, analog::kGround, 1e6);
    analog::TransientSolver solver(sys);
    solver.solveDc();
    EXPECT_NEAR(sys.voltage(out), 2.5, 0.01); // railed at outMid + swing
}

TEST(OpAmpDut, ClosedLoopGainIsMinusTwo)
{
    OpAmpDutTestbench tb;
    tb.run();
    const auto& vout = tb.recorder().analogTrace("amp/vout");
    // Steady state: output sine of amplitude 1 V, inverted. Check the
    // envelope over the last period.
    const double t1 = toSeconds(tb.config().duration);
    const auto [lo, hi] = vout.minmax(t1 - 1e-4, t1);
    EXPECT_NEAR(hi, 1.0, 0.05);
    EXPECT_NEAR(lo, -1.0, 0.05);
    // Phase inversion: input max (t = T/4) coincides with output min.
    const double tQuarter = t1 - 1e-4 + 0.25e-4;
    EXPECT_LT(vout.valueAt(tQuarter), -0.9);
    // Virtual ground holds at the inverting input.
    const auto& vinv = tb.recorder().analogTrace("amp/vinv");
    const auto [ilo, ihi] = vinv.minmax(t1 - 1e-4, t1);
    EXPECT_LT(std::max(std::fabs(ilo), std::fabs(ihi)), 0.01);
}

TEST(OpAmpDut, SetPulseOnPoleNodeIsTransient)
{
    campaign::CampaignRunner runner([] { return std::make_unique<OpAmpDutTestbench>(); },
                                    campaign::Tolerance{5e-3, 0.0});
    fault::CurrentPulseFault f;
    f.saboteur = "sab/pole";
    f.timeSeconds = 150e-6;
    f.shape = std::make_shared<fault::TrapezoidPulse>(10e-3, 100e-12, 300e-12, 500e-12);
    const auto r = runner.runOne(fault::FaultSpec{f});
    // The pole node takes Q/Cp ~ 19 mV; the feedback loop then pulls the
    // output back within its ~5 ns closed-loop time constant: a visible but
    // recovering transient.
    EXPECT_EQ(r.outcome, campaign::Outcome::TransientError);
    EXPECT_GT(r.maxAnalogDeviation, 0.01);
}

TEST(OpAmpDut, NodeSensitivityVariesAcrossLocations)
{
    // The same particle charge on different structural nodes produces wildly
    // different disturbances — the reason the paper injects per-node instead
    // of treating the analog block as a monolith. The virtual-ground node
    // (high impedance to the fast pulse) shows an orders-of-magnitude larger
    // excursion than the compensated pole node; all recover (transient).
    campaign::CampaignRunner runner([] { return std::make_unique<OpAmpDutTestbench>(); },
                                    campaign::Tolerance{5e-3, 0.0});
    auto shape = std::make_shared<fault::TrapezoidPulse>(10e-3, 100e-12, 300e-12, 500e-12);

    std::map<std::string, campaign::RunResult> results;
    for (const char* sab : {"sab/pole", "sab/vout", "sab/vinv"}) {
        results[sab] =
            runner.runOne(fault::FaultSpec{fault::CurrentPulseFault{sab, 150e-6, shape}});
        EXPECT_EQ(results[sab].outcome, campaign::Outcome::TransientError) << sab;
    }
    EXPECT_GT(results["sab/vinv"].maxAnalogDeviation,
              10.0 * results["sab/pole"].maxAnalogDeviation);
    EXPECT_GT(results["sab/vout"].maxAnalogDeviation,
              3.0 * results["sab/pole"].maxAnalogDeviation);
    // The pulse disturbs the output far longer than its own 500 ps width.
    for (const auto& [name, r] : results) {
        EXPECT_GT(r.analogTimeOutsideTol, 5e-9) << name;
    }
}

TEST(OpAmpDut, ParametricGainDropDistortsOutput)
{
    campaign::CampaignRunner runner([] { return std::make_unique<OpAmpDutTestbench>(); },
                                    campaign::Tolerance{20e-3, 0.0});
    // Reference [10]-style parametric fault: open-loop gain collapses to 20.
    fault::ParametricFault f{"amp/gain", 2e-4, 0};
    const auto r = runner.runOne(fault::FaultSpec{f});
    EXPECT_EQ(r.outcome, campaign::Outcome::Failure); // never recovers
    EXPECT_GT(r.maxAnalogDeviation, 0.05);
}

} // namespace
} // namespace gfi::duts
