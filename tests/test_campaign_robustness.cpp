// Fault-tolerant campaign engine: run containment, watchdogs, retry policy
// and checkpoint/resume. Injected runs are *expected* to misbehave — these
// tests drive the campaign over deliberately pathological testbenches (a
// NaN-producing analog element, a delta-cycle oscillator, a run that never
// finishes) and assert that every one becomes a classified data point
// instead of a crash or a hang, and that an interrupted campaign resumes
// from its journal without re-simulating completed faults.

#include "analog/passive.hpp"
#include "analog/sources.hpp"
#include "core/campaign.hpp"
#include "core/journal.hpp"
#include "duts/digital_dut.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>

namespace gfi::campaign {
namespace {

// One bench exposing all three pathologies as armable parametric faults;
// the golden run (nothing armed) is clean.
//
//   "src/amps"  — scales a current source level (NaN factor => divergence)
//   "src/flaky" — NaN on the first armed run only (retry-then-succeed flake)
//   "osc/en"    — enables a zero-delay combinational loop (delta-cycle limit)
//   "hang"      — starts a 1 fs self-rescheduling action (run never finishes)
std::unique_ptr<fault::Testbench> makeChaosBench(std::shared_ptr<int> flakyArms = nullptr)
{
    auto tb = std::make_unique<fault::Testbench>();
    auto& ana = tb->sim().analog();
    auto& dig = tb->sim().digital();

    const analog::NodeId n1 = ana.node("n1");
    auto& src = ana.add<analog::CurrentSource>(ana, "src", n1, analog::kGround, 1e-3);
    ana.add<analog::Resistor>(ana, "r1", n1, analog::kGround, 1e3);
    tb->observeAnalog("n1");
    tb->addParameter("src/amps", [&src](double f) { src.setLevel(1e-3 * f); });
    if (flakyArms) {
        tb->addParameter("src/flaky", [&src, flakyArms](double) {
            if (++*flakyArms == 1) {
                src.setLevel(std::nan(""));
            }
        });
    }

    auto& en = dig.logicSignal("osc/en", digital::Logic::Zero);
    auto& loop = dig.logicSignal("osc/loop", digital::Logic::Zero);
    dig.process(
        "osc/proc",
        [&en, &loop] {
            if (en.value() == digital::Logic::One) {
                loop.scheduleInertial(digital::logicNot(loop.value()), 0);
            }
        },
        {&en, &loop});
    tb->addParameter("osc/en", [&en](double) { en.forceValue(digital::Logic::One); });
    dig.scheduler().setDeltaLimit(5'000); // keep the oscillation cheap to detect

    auto& sched = dig.scheduler();
    tb->addParameter("hang", [&sched](double) {
        auto fn = std::make_shared<std::function<void()>>();
        // The lambda holds only a weak self-reference; the strong one lives
        // in the scheduled action, so destroying the scheduler frees it.
        std::weak_ptr<std::function<void()>> weak = fn;
        *fn = [&sched, weak] {
            // Burn real time so the wall-clock deadline is reachable long
            // before the 1 fs-at-a-time crawl covers the run duration.
            volatile std::uint64_t sink = 0;
            for (int i = 0; i < 20'000; ++i) {
                sink = sink + 1;
            }
            if (auto self = weak.lock()) {
                sched.scheduleAction(sched.now() + 1, [self] { (*self)(); });
            }
        };
        (*fn)();
    });

    tb->setDuration(100 * kNanosecond);
    return tb;
}

fault::FaultSpec divergingFault()
{
    return fault::ParametricFault{"src/amps", std::nan(""), 0};
}

fault::FaultSpec oscillatorFault()
{
    return fault::ParametricFault{"osc/en", 1.0, 10 * kNanosecond};
}

fault::FaultSpec hangingFault()
{
    return fault::ParametricFault{"hang", 1.0, kNanosecond};
}

TEST(CampaignRobustness, NanAnalogElementClassifiesAsDiverged)
{
    CampaignRunner runner([] { return makeChaosBench(); });
    const RunResult r = runner.runOne(divergingFault());
    EXPECT_EQ(r.outcome, Outcome::Diverged);
    EXPECT_FALSE(r.diagnostics.error.empty());
    EXPECT_EQ(r.diagnostics.attempts, 1);
}

TEST(CampaignRobustness, DeltaCycleOscillatorClassifiesAsSimError)
{
    CampaignRunner runner([] { return makeChaosBench(); });
    const RunResult r = runner.runOne(oscillatorFault());
    EXPECT_EQ(r.outcome, Outcome::SimError);
    // The improved limit error names the limit, the time and the loop signal.
    EXPECT_NE(r.diagnostics.error.find("delta-cycle limit"), std::string::npos);
    EXPECT_NE(r.diagnostics.error.find("10 ns"), std::string::npos);
    EXPECT_NE(r.diagnostics.error.find("osc/loop"), std::string::npos);
    // ... and the detail table surfaces it.
    CampaignReport report;
    report.runs.push_back(r);
    EXPECT_NE(report.detailTable().find("delta-cycle limit"), std::string::npos);
}

TEST(CampaignRobustness, HangingRunTripsWallClockWatchdog)
{
    CampaignRunner runner([] { return makeChaosBench(); });
    WatchdogConfig wd;
    wd.wallClockSeconds = 0.05;
    runner.setWatchdogConfig(wd);
    const RunResult r = runner.runOne(hangingFault());
    EXPECT_EQ(r.outcome, Outcome::Timeout);
    EXPECT_NE(r.diagnostics.error.find("wall-clock"), std::string::npos);
    EXPECT_GT(r.diagnostics.digitalWaves, 0u);
}

TEST(CampaignRobustness, HangingRunTripsWaveBudget)
{
    CampaignRunner runner([] { return makeChaosBench(); });
    WatchdogConfig wd;
    wd.digitalWaves = 20'000;
    runner.setWatchdogConfig(wd);
    const RunResult r = runner.runOne(hangingFault());
    EXPECT_EQ(r.outcome, Outcome::Timeout);
    EXPECT_NE(r.diagnostics.error.find("wave budget"), std::string::npos);
}

TEST(CampaignRobustness, AnalogStepBudgetTripsOnSlowSolve)
{
    CampaignRunner runner([] { return makeChaosBench(); });
    WatchdogConfig wd;
    wd.analogSteps = 3; // absurdly small: even the clean run exceeds it
    runner.setWatchdogConfig(wd);
    const RunResult r = runner.runOne(fault::ParametricFault{"src/amps", 2.0, 0});
    EXPECT_EQ(r.outcome, Outcome::Timeout);
    EXPECT_NE(r.diagnostics.error.find("step budget"), std::string::npos);
}

TEST(CampaignRobustness, RetryPolicyRecoversFlakyRun)
{
    auto flakyArms = std::make_shared<int>(0);
    CampaignRunner runner([flakyArms] { return makeChaosBench(flakyArms); });
    RetryPolicy retry;
    retry.maxAttempts = 2;
    runner.setRetryPolicy(retry);
    // First armed attempt drives the source to NaN; the retry is clean.
    const RunResult r = runner.runOne(fault::ParametricFault{"src/flaky", 1.0, 0});
    EXPECT_EQ(r.diagnostics.attempts, 2);
    EXPECT_FALSE(isAbnormal(r.outcome));
    EXPECT_EQ(*flakyArms, 2);
}

TEST(CampaignRobustness, RetryDisabledKeepsFirstVerdict)
{
    auto flakyArms = std::make_shared<int>(0);
    CampaignRunner runner([flakyArms] { return makeChaosBench(flakyArms); });
    const RunResult r = runner.runOne(fault::ParametricFault{"src/flaky", 1.0, 0});
    EXPECT_EQ(r.outcome, Outcome::Diverged);
    EXPECT_EQ(r.diagnostics.attempts, 1);
}

// The acceptance scenario: one campaign containing a solver-diverging fault,
// a scheduler-limit fault and a hanging fault runs to completion with no
// exception escaping run(), classifies all three, and the summary table
// carries every outcome category.
TEST(CampaignRobustness, PathologicalCampaignRunsToCompletion)
{
    CampaignRunner runner([] { return makeChaosBench(); });
    WatchdogConfig wd;
    wd.wallClockSeconds = 0.05;
    runner.setWatchdogConfig(wd);

    const std::vector<fault::FaultSpec> faults{
        fault::FaultSpec{},  // golden: silent
        divergingFault(), oscillatorFault(), hangingFault()};
    CampaignReport report;
    ASSERT_NO_THROW(report = runner.run(faults));
    ASSERT_EQ(report.runs.size(), 4u);
    EXPECT_EQ(report.runs[0].outcome, Outcome::Silent);
    EXPECT_EQ(report.runs[1].outcome, Outcome::Diverged);
    EXPECT_EQ(report.runs[2].outcome, Outcome::SimError);
    EXPECT_EQ(report.runs[3].outcome, Outcome::Timeout);

    const std::string summary = report.summaryTable();
    for (Outcome o : kAllOutcomes) {
        EXPECT_NE(summary.find(toString(o)), std::string::npos)
            << "summaryTable drops outcome " << toString(o);
    }
}

// --- journal / checkpoint-resume -------------------------------------------

TEST(CampaignRobustness, JournalEntryRoundTrips)
{
    RunResult r;
    r.fault = fault::BitFlipFault{"dut/cnt", 3, 17 * kNanosecond};
    r.outcome = Outcome::Diverged;
    r.firstOutputError = 12345;
    r.totalOutputErrorTime = 999;
    r.maxAnalogDeviation = 0.125;
    r.erredSignals = {"out[0]", "vctl"};
    r.corruptedState = {"dut/cnt"};
    r.diagnostics.error = "TransientSolver: step \"failed\"\nat t=1e-9";
    r.diagnostics.attempts = 3;
    r.diagnostics.digitalWaves = 42;
    r.diagnostics.analogSteps = 77;

    const std::string line = CampaignJournal::entryToJson(7, r);
    const auto parsed = CampaignJournal::parseLine(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->index, 7u);
    EXPECT_EQ(parsed->faultDescription, fault::describe(r.fault));
    EXPECT_EQ(parsed->result.outcome, Outcome::Diverged);
    EXPECT_EQ(parsed->result.firstOutputError, 12345);
    EXPECT_EQ(parsed->result.totalOutputErrorTime, 999);
    EXPECT_EQ(parsed->result.erredSignals, r.erredSignals);
    EXPECT_EQ(parsed->result.corruptedState, r.corruptedState);
    EXPECT_EQ(parsed->result.diagnostics.error, r.diagnostics.error);
    EXPECT_EQ(parsed->result.diagnostics.attempts, 3);
    EXPECT_EQ(parsed->result.diagnostics.digitalWaves, 42u);
    EXPECT_TRUE(parsed->result.diagnostics.fromJournal);

    EXPECT_FALSE(CampaignJournal::parseLine("not json").has_value());
    EXPECT_FALSE(CampaignJournal::parseLine("").has_value());
}

TEST(CampaignRobustness, JournalResumeSkipsCompletedFaults)
{
    const std::string path = ::testing::TempDir() + "gfi_resume_test.jsonl";
    std::remove(path.c_str());

    const std::vector<fault::FaultSpec> faults{
        fault::BitFlipFault{"dut/out_reg", 0, 2 * kMicrosecond},
        fault::BitFlipFault{"dut/cnt", 1, 2 * kMicrosecond},
        fault::BitFlipFault{"dut/cnt", 2, 2 * kMicrosecond},
    };

    // Phase 1: "killed" campaign — only the first two faults completed.
    auto builds1 = std::make_shared<std::atomic<int>>(0);
    CampaignRunner first([builds1] {
        builds1->fetch_add(1, std::memory_order_relaxed);
        return std::make_unique<duts::DigitalDutTestbench>();
    });
    first.setJournalPath(path);
    const CampaignReport partial =
        first.run({faults.begin(), faults.begin() + 2});
    ASSERT_EQ(partial.runs.size(), 2u);
    EXPECT_EQ(builds1->load(), 3); // golden + 2 faults

    // Phase 2: fresh runner, same journal, full fault list: only the third
    // fault may simulate (plus the golden reference).
    auto builds2 = std::make_shared<std::atomic<int>>(0);
    CampaignRunner second([builds2] {
        builds2->fetch_add(1, std::memory_order_relaxed);
        return std::make_unique<duts::DigitalDutTestbench>();
    });
    second.setJournalPath(path);
    const CampaignReport full = second.run(faults);
    ASSERT_EQ(full.runs.size(), 3u);
    EXPECT_EQ(builds2->load(), 2); // golden + fault #3 only: nothing was re-run
    EXPECT_TRUE(full.runs[0].diagnostics.fromJournal);
    EXPECT_TRUE(full.runs[1].diagnostics.fromJournal);
    EXPECT_FALSE(full.runs[2].diagnostics.fromJournal);
    EXPECT_EQ(full.runs[0].outcome, partial.runs[0].outcome);
    EXPECT_EQ(full.runs[1].outcome, partial.runs[1].outcome);
    // The restored result re-attaches the FaultSpec from the current list.
    EXPECT_EQ(fault::describe(full.runs[1].fault), fault::describe(faults[1]));

    // Phase 3: a *different* fault at a journaled index must re-simulate —
    // the journal validates descriptions, not just indices.
    auto builds3 = std::make_shared<std::atomic<int>>(0);
    CampaignRunner third([builds3] {
        builds3->fetch_add(1, std::memory_order_relaxed);
        return std::make_unique<duts::DigitalDutTestbench>();
    });
    third.setJournalPath(path);
    std::vector<fault::FaultSpec> changed = faults;
    changed[0] = fault::BitFlipFault{"dut/out_reg", 5, 3 * kMicrosecond};
    const CampaignReport revised = third.run(changed);
    EXPECT_EQ(builds3->load(), 2); // golden + changed fault #0
    EXPECT_FALSE(revised.runs[0].diagnostics.fromJournal);
    EXPECT_TRUE(revised.runs[1].diagnostics.fromJournal);

    std::remove(path.c_str());
}

TEST(CampaignRobustness, TornJournalLinesAreCountedAndSkipped)
{
    const std::string path = ::testing::TempDir() + "gfi_torn_journal.jsonl";
    std::remove(path.c_str());

    const std::vector<fault::FaultSpec> faults{
        fault::BitFlipFault{"dut/out_reg", 0, 2 * kMicrosecond},
        fault::BitFlipFault{"dut/out_reg", 1, 2 * kMicrosecond},
        fault::BitFlipFault{"dut/cnt", 2, 2 * kMicrosecond},
    };
    const auto factory = [] { return std::make_unique<duts::DigitalDutTestbench>(); };
    {
        CampaignRunner first(factory);
        first.setJournalPath(path);
        (void)first.run({faults.begin(), faults.begin() + 2});
        EXPECT_EQ(first.run({faults.begin(), faults.begin() + 2}).journalSkippedLines,
                  0u); // a clean journal reports no skips
    }

    // Corrupt the checkpoint: one line torn mid-record (a kill between write
    // and flush) and one line of on-disk garbage. Blank lines don't count.
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "{\"index\": 2, \"fault\": \"torn-off-mid-rec\n"
            << "\n"
            << "%%% not a journal line %%%\n";
    }
    const auto loaded = CampaignJournal::loadWithStats(path);
    EXPECT_EQ(loaded.entries.size(), 2u); // restored runs are never re-appended
    EXPECT_EQ(loaded.skippedLines, 2u);

    CampaignRunner resumed(factory);
    resumed.setJournalPath(path);
    const CampaignReport report = resumed.run(faults);
    ASSERT_EQ(report.runs.size(), 3u);
    EXPECT_EQ(report.journalSkippedLines, 2u);
    EXPECT_TRUE(report.runs[0].diagnostics.fromJournal);
    EXPECT_TRUE(report.runs[1].diagnostics.fromJournal);
    EXPECT_FALSE(report.runs[2].diagnostics.fromJournal);
    // The summary footer surfaces the loss to the operator.
    EXPECT_NE(report.summaryTable().find("journal lines skipped"), std::string::npos);
    EXPECT_NE(report.summaryTable().find("torn/corrupt"), std::string::npos);

    std::remove(path.c_str());
}

TEST(CampaignRobustness, JournalRecordsAbnormalOutcomes)
{
    const std::string path = ::testing::TempDir() + "gfi_abnormal_journal.jsonl";
    std::remove(path.c_str());

    CampaignRunner runner([] { return makeChaosBench(); });
    runner.setJournalPath(path);
    (void)runner.run({divergingFault(), oscillatorFault()});

    const auto entries = CampaignJournal::load(path);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].result.outcome, Outcome::Diverged);
    EXPECT_EQ(entries[1].result.outcome, Outcome::SimError);
    EXPECT_FALSE(entries[1].result.diagnostics.error.empty());

    // Resuming the same list re-simulates nothing, abnormal runs included.
    auto builds = std::make_shared<std::atomic<int>>(0);
    CampaignRunner resumed([builds] {
        builds->fetch_add(1, std::memory_order_relaxed);
        return makeChaosBench();
    });
    resumed.setJournalPath(path);
    const CampaignReport report = resumed.run({divergingFault(), oscillatorFault()});
    EXPECT_EQ(builds->load(), 1); // golden only
    EXPECT_EQ(report.runs[0].outcome, Outcome::Diverged);
    std::remove(path.c_str());
}

} // namespace
} // namespace gfi::campaign
