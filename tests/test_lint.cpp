// Static-analysis tests: the digital netlist linter, the analog topology
// checker and the campaign preflight, each against deliberately broken
// designs — plus the "known good designs lint clean" regression and the
// campaign-runner preflight gate.

#include "adc/flash.hpp"
#include "adc/sar.hpp"
#include "analog/passive.hpp"
#include "analog/solver.hpp"
#include "analog/sources.hpp"
#include "core/campaign.hpp"
#include "digital/gates.hpp"
#include "digital/sequential.hpp"
#include "duts/digital_dut.hpp"
#include "duts/tiny_cpu.hpp"
#include "lint/lint.hpp"
#include "pll/pll.hpp"
#include "sim/errors.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

namespace gfi {
namespace {

// ---------------------------------------------------------------------------
// Digital netlist rules

TEST(DigitalLint, CombinationalLoopIsDig001)
{
    digital::Circuit c;
    auto& a = c.logicSignal("a", digital::Logic::Zero);
    auto& b = c.logicSignal("b", digital::Logic::U);
    c.add<digital::NotGate>(c, "inv1", a, b);
    c.add<digital::NotGate>(c, "inv2", b, a);

    const lint::Report rep = lint::lintDigital(c);
    ASSERT_TRUE(rep.hasRule("DIG001"));
    EXPECT_GT(rep.count(lint::Severity::Error), 0u);
    // The finding names both processes of the cycle and the looping signals.
    const auto findings = rep.byRule("DIG001");
    EXPECT_NE(findings.front().path.find("inv1/eval"), std::string::npos);
    EXPECT_NE(findings.front().path.find("inv2/eval"), std::string::npos);
    EXPECT_NE(findings.front().message.find("a"), std::string::npos);
}

TEST(DigitalLint, CombLoopRuntimeErrorPointsAtDig001)
{
    // The same design the linter flags statically oscillates at time zero;
    // the scheduler's delta-limit error must cross-reference the lint rule.
    digital::Circuit c;
    auto& a = c.logicSignal("a", digital::Logic::Zero);
    auto& b = c.logicSignal("b", digital::Logic::U);
    c.add<digital::NotGate>(c, "inv1", a, b, 0);
    c.add<digital::NotGate>(c, "inv2", b, a, 0);
    try {
        c.runUntil(kNanosecond);
        FAIL() << "expected SchedulerLimitError";
    } catch (const SchedulerLimitError& e) {
        EXPECT_NE(std::string(e.what()).find("DIG001"), std::string::npos);
    }
}

TEST(DigitalLint, SelfLoopGateIsDig001)
{
    digital::Circuit c;
    auto& a = c.logicSignal("a", digital::Logic::Zero);
    c.add<digital::NotGate>(c, "inv", a, a);
    EXPECT_TRUE(lint::lintDigital(c).hasRule("DIG001"));
}

TEST(DigitalLint, TwoDriversIsDig002)
{
    digital::Circuit c;
    auto& a = c.logicSignal("a", digital::Logic::Zero);
    c.noteExternalDriver(a);
    auto& y = c.logicSignal("y", digital::Logic::U);
    c.add<digital::BufGate>(c, "buf1", a, y);
    c.add<digital::BufGate>(c, "buf2", a, y);

    const lint::Report rep = lint::lintDigital(c);
    ASSERT_TRUE(rep.hasRule("DIG002"));
    EXPECT_EQ(rep.byRule("DIG002").front().path, "y");
}

TEST(DigitalLint, UndrivenInputIsDig003Warning)
{
    digital::Circuit c;
    auto& a = c.logicSignal("a", digital::Logic::U); // nobody drives a
    auto& y = c.logicSignal("y", digital::Logic::U);
    c.add<digital::BufGate>(c, "buf", a, y);

    const lint::Report rep = lint::lintDigital(c);
    ASSERT_TRUE(rep.hasRule("DIG003"));
    EXPECT_EQ(rep.byRule("DIG003").front().severity, lint::Severity::Warning);
    EXPECT_EQ(rep.byRule("DIG003").front().path, "a");
    EXPECT_FALSE(rep.clean());

    // Declaring the external stimulus clears the warning.
    c.noteExternalDriver(a);
    EXPECT_FALSE(lint::lintDigital(c).hasRule("DIG003"));
}

TEST(DigitalLint, DeadSignalIsDig004Info)
{
    digital::Circuit c;
    auto& a = c.logicSignal("a", digital::Logic::Zero);
    c.noteExternalDriver(a);
    auto& y = c.logicSignal("y", digital::Logic::U); // driven, never consumed
    c.add<digital::BufGate>(c, "buf", a, y);

    const lint::Report rep = lint::lintDigital(c);
    ASSERT_TRUE(rep.hasRule("DIG004"));
    EXPECT_EQ(rep.byRule("DIG004").front().severity, lint::Severity::Info);
    EXPECT_EQ(rep.byRule("DIG004").front().path, "y");
    EXPECT_TRUE(rep.clean()) << "infos must not fail a design";
}

TEST(DigitalLint, UnclockedRegisterIsDig005)
{
    digital::Circuit c;
    auto& clk = c.logicSignal("clk", digital::Logic::Zero); // no ClockGen
    auto& d = c.logicSignal("d", digital::Logic::Zero);
    c.noteExternalDriver(d);
    auto& q = c.logicSignal("q", digital::Logic::U);
    c.add<digital::DFlipFlop>(c, "ff", clk, d, q);

    const lint::Report rep = lint::lintDigital(c);
    ASSERT_TRUE(rep.hasRule("DIG005"));
    EXPECT_EQ(rep.byRule("DIG005").front().path, "ff/seq");

    // A clocked copy of the same design is quiet.
    digital::Circuit c2;
    auto& clk2 = c2.logicSignal("clk", digital::Logic::Zero);
    c2.add<digital::ClockGen>(c2, "clkgen", clk2, 10 * kNanosecond);
    auto& d2 = c2.logicSignal("d", digital::Logic::Zero);
    c2.noteExternalDriver(d2);
    auto& q2 = c2.logicSignal("q", digital::Logic::U);
    c2.add<digital::DFlipFlop>(c2, "ff", clk2, d2, q2);
    EXPECT_FALSE(lint::lintDigital(c2).hasRule("DIG005"));
}

// ---------------------------------------------------------------------------
// Analog topology rules

TEST(AnalogLint, FloatingIslandIsAna001)
{
    // An RC pair with no connection to the rest of the circuit: previously
    // only visible at runtime (the solve leans on gmin and produces garbage).
    analog::AnalogSystem sys;
    const analog::NodeId in = sys.node("in");
    sys.add<analog::VoltageSource>(sys, "V1", in, analog::kGround, 1.0);
    sys.add<analog::Resistor>(sys, "R1", in, analog::kGround, 1e3);
    const analog::NodeId f1 = sys.node("float1");
    const analog::NodeId f2 = sys.node("float2");
    sys.add<analog::Resistor>(sys, "Rf", f1, f2, 1e3);
    sys.add<analog::Capacitor>(sys, "Cf", f1, f2, 1e-9);

    const lint::Report rep = lint::lintAnalog(sys);
    ASSERT_TRUE(rep.hasRule("ANA001"));
    EXPECT_GT(rep.count(lint::Severity::Error), 0u);
    const auto findings = rep.byRule("ANA001");
    bool sawFloat1 = false;
    bool sawFloat2 = false;
    for (const auto& d : findings) {
        sawFloat1 = sawFloat1 || d.path == "float1";
        sawFloat2 = sawFloat2 || d.path == "float2";
    }
    EXPECT_TRUE(sawFloat1 && sawFloat2);
}

TEST(AnalogLint, DanglingNodeIsAna001)
{
    analog::AnalogSystem sys;
    const analog::NodeId in = sys.node("in");
    sys.add<analog::VoltageSource>(sys, "V1", in, analog::kGround, 1.0);
    sys.node("dangling"); // created, never touched by any component
    EXPECT_TRUE(lint::lintAnalog(sys).hasRule("ANA001"));
}

TEST(AnalogLint, VoltageSourceLoopIsAna002)
{
    analog::AnalogSystem sys;
    const analog::NodeId n = sys.node("n");
    sys.add<analog::VoltageSource>(sys, "V1", n, analog::kGround, 1.0);
    sys.add<analog::VoltageSource>(sys, "V2", n, analog::kGround, 2.0);
    sys.add<analog::Resistor>(sys, "R1", n, analog::kGround, 1e3);

    const lint::Report rep = lint::lintAnalog(sys);
    ASSERT_TRUE(rep.hasRule("ANA002"));
    EXPECT_GT(rep.count(lint::Severity::Error), 0u);
}

TEST(AnalogLint, VsourceLoopRuntimeErrorPointsAtLint)
{
    // The V-loop the linter flags statically is genuinely singular at
    // runtime (the two branch currents are underdetermined); the solver's
    // DivergenceError must cross-reference the analog lint rules.
    analog::AnalogSystem sys;
    const analog::NodeId n = sys.node("n");
    sys.add<analog::VoltageSource>(sys, "V1", n, analog::kGround, 1.0);
    sys.add<analog::VoltageSource>(sys, "V2", n, analog::kGround, 2.0);
    sys.add<analog::Resistor>(sys, "R1", n, analog::kGround, 1e3);
    analog::TransientSolver solver(sys);
    try {
        solver.solveDc();
        FAIL() << "expected DivergenceError";
    } catch (const DivergenceError& e) {
        EXPECT_NE(std::string(e.what()).find("ANA001-ANA005"), std::string::npos);
    }
}

TEST(AnalogLint, CurrentSourceCutsetIsAna003)
{
    // A current source pushing into a capacitive island: no DC path can
    // carry the current, so the operating point integrates to infinity.
    analog::AnalogSystem sys;
    const analog::NodeId n = sys.node("n");
    sys.add<analog::CurrentSource>(sys, "I1", n, analog::kGround, 1e-3);
    sys.add<analog::Capacitor>(sys, "C1", n, analog::kGround, 1e-9);
    EXPECT_TRUE(lint::lintAnalog(sys).hasRule("ANA003"));
}

TEST(AnalogLint, GroundedRcIsClean)
{
    analog::AnalogSystem sys;
    const analog::NodeId in = sys.node("in");
    const analog::NodeId out = sys.node("out");
    sys.add<analog::VoltageSource>(sys, "V1", in, analog::kGround, 1.0);
    sys.add<analog::Resistor>(sys, "R1", in, out, 1e3);
    sys.add<analog::Capacitor>(sys, "C1", out, analog::kGround, 1e-9);
    const lint::Report rep = lint::lintAnalog(sys);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.size(), 0u);
}

// ---------------------------------------------------------------------------
// Campaign preflight rules

TEST(Preflight, UnknownTargetIsPre001)
{
    duts::DigitalDutTestbench tb;
    const fault::FaultSpec f = fault::BitFlipFault{"dut/no_such_reg", 0, kMicrosecond};
    const lint::Report rep = lint::preflightFault(tb, f);
    ASSERT_TRUE(rep.hasRule("PRE001"));
    EXPECT_GT(rep.count(lint::Severity::Error), 0u);
}

TEST(Preflight, BitOutsideWidthIsPre002)
{
    duts::DigitalDutTestbench tb;
    // dut/out_reg is 8 bits wide; bit 12 does not exist.
    const fault::FaultSpec f = fault::BitFlipFault{"dut/out_reg", 12, kMicrosecond};
    const lint::Report rep = lint::preflightFault(tb, f);
    EXPECT_TRUE(rep.hasRule("PRE002"));
}

TEST(Preflight, OutOfWindowTimeIsPre003)
{
    duts::DigitalDutTestbench tb;
    const fault::FaultSpec f =
        fault::BitFlipFault{"dut/out_reg", 0, tb.duration() + kMicrosecond};
    const lint::Report rep = lint::preflightFault(tb, f);
    ASSERT_TRUE(rep.hasRule("PRE003"));
    EXPECT_GT(rep.count(lint::Severity::Error), 0u);
}

TEST(Preflight, MissingPulseShapeIsPre004)
{
    pll::PllTestbench tb;
    fault::CurrentPulseFault f;
    f.saboteur = pll::names::kSabFilter;
    f.timeSeconds = 1e-6;
    f.shape = nullptr; // forgot the shape
    EXPECT_TRUE(lint::preflightFault(tb, fault::FaultSpec{f}).hasRule("PRE004"));
}

TEST(Preflight, DuplicateFaultIsPre005Warning)
{
    duts::DigitalDutTestbench tb;
    const fault::FaultSpec f = fault::BitFlipFault{"dut/out_reg", 2, kMicrosecond};
    const lint::Report rep = lint::preflightCampaign(tb, {f, f});
    ASSERT_TRUE(rep.hasRule("PRE005"));
    EXPECT_EQ(rep.byRule("PRE005").front().severity, lint::Severity::Warning);
    EXPECT_EQ(rep.count(lint::Severity::Error), 0u);
}

TEST(Preflight, BatchIneligibleFaultInMixedListIsPre008Warning)
{
    duts::DigitalDutTestbench tb;
    const std::vector<fault::FaultSpec> faults{
        fault::StuckAtFault{"sab/enable", digital::Logic::One, kMicrosecond, 0},
        fault::DigitalPulseFault{"sab/data", kMicrosecond, 5 * kNanosecond},
    };
    const lint::Report rep = lint::preflightCampaign(tb, faults);
    ASSERT_TRUE(rep.hasRule("PRE008"));
    const auto& diags = rep.byRule("PRE008");
    ASSERT_EQ(diags.size(), 1u); // only the pulse fault, not the stuck-at
    EXPECT_EQ(diags.front().severity, lint::Severity::Warning);
    // The diagnostic names the offending fault (its component) and the reason.
    EXPECT_NE(diags.front().path.find("sab/data"), std::string::npos);
    EXPECT_NE(diags.front().message.find("not batch-eligible"), std::string::npos);
    EXPECT_EQ(rep.count(lint::Severity::Error), 0u);
}

TEST(Preflight, UniformlyIneligibleListSkipsPre008)
{
    // A list with no batch-eligible fault at all gains nothing from one
    // warning per entry: the whole campaign simply runs event-driven.
    duts::DigitalDutTestbench tb;
    const std::vector<fault::FaultSpec> faults{
        fault::DigitalPulseFault{"sab/enable", kMicrosecond, 5 * kNanosecond},
        fault::DigitalPulseFault{"sab/data", kMicrosecond, 9 * kNanosecond},
    };
    EXPECT_FALSE(lint::preflightCampaign(tb, faults).hasRule("PRE008"));
}

TEST(Preflight, NonCompilableDesignSkipsPre008)
{
    // The PLL carries an analog domain, so the word compiler rejects the
    // whole design — a mixed fault list must not be scored.
    pll::PllTestbench tb;
    const std::string reg = tb.sim().digital().instrumentation().names().front();
    auto pulse = std::make_shared<fault::TrapezoidPulse>(2e-3, 300e-12, 300e-12, 1e-9);
    const std::vector<fault::FaultSpec> faults{
        fault::BitFlipFault{reg, 0, 10 * kMicrosecond},
        fault::CurrentPulseFault{pll::names::kSabFilter, 8e-6, pulse},
    };
    EXPECT_FALSE(lint::preflightCampaign(tb, faults).hasRule("PRE008"));
}

TEST(Preflight, ValidFaultListPasses)
{
    duts::DigitalDutTestbench tb;
    const std::vector<fault::FaultSpec> faults{
        fault::BitFlipFault{"dut/out_reg", 4, kMicrosecond},
        fault::FsmTransitionFault{"dut/fsm", 2, 2 * kMicrosecond},
        fault::DigitalPulseFault{"sab/enable", kMicrosecond, 5 * kNanosecond},
    };
    const lint::Report rep = lint::preflightCampaign(tb, faults);
    EXPECT_EQ(rep.count(lint::Severity::Error), 0u);
}

// ---------------------------------------------------------------------------
// Campaign-runner preflight gate

campaign::CampaignRunner countingRunner(std::shared_ptr<int> builds)
{
    return campaign::CampaignRunner([builds] {
        ++*builds;
        return std::make_unique<duts::DigitalDutTestbench>();
    });
}

TEST(CampaignPreflight, UnknownTargetFailsInOneBuildNotPerRun)
{
    auto builds = std::make_shared<int>(0);
    campaign::CampaignRunner runner = countingRunner(builds);
    std::vector<fault::FaultSpec> faults;
    for (int i = 0; i < 20; ++i) {
        faults.push_back(fault::BitFlipFault{"typo/reg", 0, kMicrosecond + i});
    }
    try {
        runner.run(faults);
        FAIL() << "expected PreflightError";
    } catch (const lint::PreflightError& e) {
        EXPECT_TRUE(e.report().hasRule("PRE001"));
        EXPECT_NE(std::string(e.what()).find("PRE001"), std::string::npos);
    }
    // One testbench build (lint + preflight), zero per-fault simulations.
    EXPECT_EQ(*builds, 1);
}

TEST(CampaignPreflight, DisabledPreflightContainsAsSimError)
{
    campaign::CampaignRunner runner(
        [] { return std::make_unique<duts::DigitalDutTestbench>(); });
    runner.setPreflight(false);
    const fault::FaultSpec bad = fault::BitFlipFault{"typo/reg", 0, kMicrosecond};
    const campaign::CampaignReport rep = runner.run({bad});
    ASSERT_EQ(rep.runs.size(), 1u);
    EXPECT_EQ(rep.runs[0].outcome, campaign::Outcome::SimError);
}

TEST(CampaignPreflight, PreflightReportListsAllBadFaults)
{
    campaign::CampaignRunner runner(
        [] { return std::make_unique<duts::DigitalDutTestbench>(); });
    const std::vector<fault::FaultSpec> faults{
        fault::BitFlipFault{"typo/one", 0, kMicrosecond},
        fault::BitFlipFault{"dut/out_reg", 0, kMicrosecond}, // fine
        fault::StuckAtFault{"typo/two", digital::Logic::One, kMicrosecond, 0},
    };
    const lint::Report rep = runner.preflightReport(faults);
    EXPECT_EQ(rep.byRule("PRE001").size(), 2u);
}

TEST(CampaignPreflight, JournalEntriesForPreflightFailingFaultsAreNotRestored)
{
    const std::string path = ::testing::TempDir() + "lint_journal_test.jsonl";
    std::remove(path.c_str());
    const fault::FaultSpec bad = fault::BitFlipFault{"typo/reg", 0, kMicrosecond};
    const fault::FaultSpec good = fault::BitFlipFault{"dut/out_reg", 4, kMicrosecond};

    // First session: preflight off, the bad fault is journaled as SimError.
    {
        campaign::CampaignRunner runner(
            [] { return std::make_unique<duts::DigitalDutTestbench>(); });
        runner.setPreflight(false);
        runner.setJournalPath(path);
        const campaign::CampaignReport rep = runner.run({bad, good});
        ASSERT_EQ(rep.runs.size(), 2u);
        EXPECT_EQ(rep.runs[0].outcome, campaign::Outcome::SimError);
    }

    // Resume with preflight on: the list still contains the bad fault, so
    // the campaign fails up front instead of restoring its SimError row.
    {
        campaign::CampaignRunner runner(
            [] { return std::make_unique<duts::DigitalDutTestbench>(); });
        runner.setJournalPath(path);
        EXPECT_THROW(runner.run({bad, good}), lint::PreflightError);
    }

    // Resume with a corrected list (journal entries are index-keyed, so the
    // replacement keeps the good fault at its original position): the stale
    // SimError row at index 0 no longer matches and is re-simulated, while
    // the good fault's entry is restored.
    {
        campaign::CampaignRunner runner(
            [] { return std::make_unique<duts::DigitalDutTestbench>(); });
        runner.setJournalPath(path);
        const fault::FaultSpec fixed = fault::BitFlipFault{"dut/cnt", 1, kMicrosecond};
        const campaign::CampaignReport rep = runner.run({fixed, good});
        ASSERT_EQ(rep.runs.size(), 2u);
        EXPECT_FALSE(rep.runs[0].diagnostics.fromJournal);
        EXPECT_NE(rep.runs[0].outcome, campaign::Outcome::SimError);
        EXPECT_TRUE(rep.runs[1].diagnostics.fromJournal);
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Known-good designs lint clean

TEST(LintClean, DigitalDut)
{
    duts::DigitalDutTestbench tb;
    const lint::Report rep = lint::lintTestbench(tb);
    EXPECT_TRUE(rep.clean()) << rep.table();
}

TEST(LintClean, TinyCpu)
{
    duts::TinyCpuTestbench tb;
    const lint::Report rep = lint::lintTestbench(tb);
    EXPECT_TRUE(rep.clean()) << rep.table();
}

TEST(LintClean, Pll)
{
    pll::PllTestbench tb;
    const lint::Report rep = lint::lintTestbench(tb);
    EXPECT_TRUE(rep.clean()) << rep.table();
    // The loop filter's capacitive islands are reported as informational
    // gmin reliance, not errors — the PLL integrates charge by design.
    EXPECT_TRUE(rep.hasRule("ANA005"));
}

TEST(LintClean, SarAdc)
{
    adc::SarAdcTestbench tb;
    const lint::Report rep = lint::lintTestbench(tb);
    EXPECT_TRUE(rep.clean()) << rep.table();
}

TEST(LintClean, FlashAdc)
{
    adc::FlashAdcTestbench tb;
    const lint::Report rep = lint::lintTestbench(tb);
    EXPECT_TRUE(rep.clean()) << rep.table();
}

// ---------------------------------------------------------------------------
// Report rendering

TEST(LintReport, JsonAndTableRender)
{
    lint::Report rep;
    rep.add("DIG001", lint::Severity::Error, "a/b", "loop \"x\"", "break it");
    rep.add("PRE005", lint::Severity::Warning, "fault[1]", "dup", "");
    EXPECT_EQ(rep.summary(), "1 error, 1 warning, 0 infos");
    const std::string json = rep.json();
    EXPECT_NE(json.find("\"rule\": \"DIG001\""), std::string::npos);
    EXPECT_NE(json.find("loop \\\"x\\\""), std::string::npos);
    const std::string table = rep.table();
    EXPECT_NE(table.find("DIG001"), std::string::npos);
    EXPECT_NE(table.find("fault[1]"), std::string::npos);
}

} // namespace
} // namespace gfi
