// Snapshot/restore subsystem and fork-from-golden campaign execution.
//
// The contract under test, layer by layer:
//   * serialize: byte-stable primitives, header versioning, truncation safety;
//   * CheckpointStore: nearest checkpoint *strictly before* a time;
//   * capture -> restore -> run is bit-identical to an uninterrupted run for
//     the digital DUT, the PLL and the SAR ADC (traces, wave counts, solver
//     stats) — the determinism contract of DESIGN.md §9;
//   * fork-from-golden campaigns produce byte-identical journals, reports and
//     summary tables to from-scratch execution, serial and at 8 workers,
//     including mid-campaign journal resume and the retry interaction;
//   * watchdog budgets meter only post-restore work in fork mode;
//   * PRE006 rejects fork mode when a stateful component is not Snapshottable.

#include "adc/sar.hpp"
#include "core/campaign.hpp"
#include "core/journal.hpp"
#include "core/report.hpp"
#include "digital/sequential.hpp"
#include "duts/digital_dut.hpp"
#include "lint/lint.hpp"
#include "pll/pll.hpp"
#include "snapshot/serialize.hpp"
#include "snapshot/snapshot.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>

namespace gfi {
namespace {

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// ---------------------------------------------------------------------------
// serialize: primitives, header, truncation

TEST(SnapshotSerialize, RoundTripsEveryPrimitive)
{
    snapshot::Writer w;
    w.u8(0xAB);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.i64(-42);
    w.f64(-1.25e-9);
    w.boolean(true);
    w.boolean(false);
    w.str("pll/vctrl");
    w.blob({1, 2, 3, 255});

    snapshot::Reader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_DOUBLE_EQ(r.f64(), -1.25e-9);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_EQ(r.str(), "pll/vctrl");
    EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3, 255}));
    EXPECT_TRUE(r.atEnd());
}

TEST(SnapshotSerialize, HeaderRejectsWrongMagicAndVersion)
{
    snapshot::Writer good;
    snapshot::writeHeader(good);
    {
        snapshot::Reader r(good.bytes());
        EXPECT_NO_THROW(snapshot::readHeader(r));
    }
    {
        std::vector<std::uint8_t> bytes = good.bytes();
        bytes[0] ^= 0xFF; // corrupt the magic
        snapshot::Reader r(bytes);
        EXPECT_THROW(snapshot::readHeader(r), snapshot::SnapshotFormatError);
    }
    {
        std::vector<std::uint8_t> bytes = good.bytes();
        bytes[8] += 1; // bump the (little-endian) format version
        snapshot::Reader r(bytes);
        EXPECT_THROW(snapshot::readHeader(r), snapshot::SnapshotFormatError);
    }
}

TEST(SnapshotSerialize, TruncatedStreamThrowsInsteadOfReadingGarbage)
{
    snapshot::Writer w;
    w.u64(7);
    w.str("a-signal-name");
    std::vector<std::uint8_t> bytes = w.bytes();
    bytes.resize(bytes.size() - 5);
    snapshot::Reader r(bytes);
    EXPECT_EQ(r.u64(), 7u);
    EXPECT_THROW(r.str(), snapshot::SnapshotFormatError);
}

TEST(SnapshotSerialize, RngResumesExactSequence)
{
    Rng a(12345);
    for (int i = 0; i < 100; ++i) {
        (void)a.next();
    }
    snapshot::Writer w;
    a.captureState(w);

    std::vector<std::uint64_t> expected;
    for (int i = 0; i < 32; ++i) {
        expected.push_back(a.next());
    }

    Rng b(999); // different seed: restore must fully overwrite it
    snapshot::Reader r(w.bytes());
    b.restoreState(r);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(b.next(), expected[static_cast<std::size_t>(i)]) << "draw " << i;
    }
}

// ---------------------------------------------------------------------------
// CheckpointStore

TEST(SnapshotStore, NearestBeforeIsStrictlyBefore)
{
    snapshot::CheckpointStore store;
    for (SimTime t : {10, 20, 30}) {
        auto snap = std::make_shared<snapshot::Snapshot>();
        snap->time = t;
        store.put("tb", std::move(snap));
    }
    EXPECT_EQ(store.count("tb"), 3u);
    EXPECT_EQ(store.nearestBefore("tb", 5), nullptr);
    EXPECT_EQ(store.nearestBefore("tb", 10), nullptr); // strictly before
    ASSERT_NE(store.nearestBefore("tb", 11), nullptr);
    EXPECT_EQ(store.nearestBefore("tb", 11)->time, 10);
    EXPECT_EQ(store.nearestBefore("tb", 30)->time, 20);
    EXPECT_EQ(store.nearestBefore("tb", 1000)->time, 30);
    EXPECT_EQ(store.nearestBefore("other", 1000), nullptr);
    store.clear();
    EXPECT_EQ(store.count("tb"), 0u);
}

// ---------------------------------------------------------------------------
// capture -> restore -> run == uninterrupted run (per testbench)

/// Advances @p tb event by event and captures at the first scheduled digital
/// event at or after @p t. Event times are where an uninterrupted run's
/// kernels stop anyway, so stopping there perturbs nothing.
snapshot::Snapshot captureAtOrAfter(fault::Testbench& tb, SimTime t)
{
    auto& sim = tb.sim();
    sim.elaborate();
    while (true) {
        const SimTime ev = sim.digital().scheduler().nextEventTime();
        if (ev >= tb.duration()) {
            throw std::logic_error("captureAtOrAfter: no event before the duration");
        }
        sim.run(ev);
        if (ev >= t) {
            return sim.captureSnapshot();
        }
    }
}

void expectIdenticalRuns(fault::Testbench& reference, fault::Testbench& resumed,
                         const char* tag)
{
    for (const auto& [name, ref] : reference.recorder().digitalTraces()) {
        const trace::DigitalTrace& got = resumed.recorder().digitalTrace(name);
        EXPECT_EQ(got.initial, ref.initial) << tag << ": " << name;
        EXPECT_EQ(got.events, ref.events) << tag << ": digital trace " << name;
    }
    for (const auto& [name, ref] : reference.recorder().analogTraces()) {
        const trace::AnalogTrace& got = resumed.recorder().analogTrace(name);
        EXPECT_EQ(got.samples, ref.samples) << tag << ": analog trace " << name;
    }
    EXPECT_EQ(resumed.sim().digital().scheduler().deltaCycles(),
              reference.sim().digital().scheduler().deltaCycles())
        << tag << ": wave counts differ";
    if (reference.sim().analog().unknownCount() > 0) {
        const auto& a = reference.sim().solver().stats();
        const auto& b = resumed.sim().solver().stats();
        EXPECT_EQ(b.acceptedSteps, a.acceptedSteps) << tag;
        EXPECT_EQ(b.rejectedSteps, a.rejectedSteps) << tag;
        EXPECT_EQ(b.newtonIterations, a.newtonIterations) << tag;
    }
}

void expectCaptureRestoreBitIdentical(const fault::TestbenchFactory& factory,
                                      SimTime captureAt, const char* tag)
{
    // Reference: one uninterrupted run.
    auto reference = factory();
    reference->run();

    // Donor: event-stepped to the capture point, then run to completion —
    // must already equal the reference (segmentation is transparent).
    auto donor = factory();
    const snapshot::Snapshot snap = captureAtOrAfter(*donor, captureAt);
    EXPECT_GE(snap.time, captureAt);
    EXPECT_LT(snap.time, donor->duration());
    EXPECT_FALSE(snap.bytes.empty());
    donor->sim().run(donor->duration());
    expectIdenticalRuns(*reference, *donor, (std::string(tag) + "/segmented").c_str());

    // Resumed: a fresh structural twin restored from the snapshot, traces
    // preloaded with the golden prefix, then run only over the suffix.
    auto resumed = factory();
    resumed->sim().restoreSnapshot(snap);
    resumed->recorder().preloadPrefix(reference->recorder(), snap.time, snap.analogTime);
    EXPECT_EQ(resumed->sim().now(), snap.time);
    resumed->run();
    expectIdenticalRuns(*reference, *resumed, (std::string(tag) + "/resumed").c_str());
}

TEST(SnapshotRestore, DigitalDutBitIdentical)
{
    expectCaptureRestoreBitIdentical(
        [] { return std::make_unique<duts::DigitalDutTestbench>(); },
        2 * kMicrosecond + 3 * kNanosecond, "digital");
}

TEST(SnapshotRestore, PllBitIdentical)
{
    pll::PllConfig cfg;
    cfg.duration = 20 * kMicrosecond;
    expectCaptureRestoreBitIdentical(
        [cfg] { return std::make_unique<pll::PllTestbench>(cfg); }, 8 * kMicrosecond,
        "pll");
}

TEST(SnapshotRestore, AdcBitIdentical)
{
    adc::SarConfig cfg;
    cfg.inputLevels = {1.7, 2.9};
    expectCaptureRestoreBitIdentical(
        [cfg] { return std::make_unique<adc::SarAdcTestbench>(cfg); }, 9 * kMicrosecond,
        "adc");
}

TEST(SnapshotRestore, RestoreRejectsStructuralMismatch)
{
    duts::DigitalDutTestbench donor;
    const snapshot::Snapshot snap = captureAtOrAfter(donor, kMicrosecond);

    pll::PllConfig cfg;
    cfg.duration = 20 * kMicrosecond;
    pll::PllTestbench other(cfg);
    EXPECT_THROW(other.sim().restoreSnapshot(snap), snapshot::SnapshotFormatError);
}

// ---------------------------------------------------------------------------
// fork-from-golden campaigns == from-scratch campaigns, byte for byte

struct CampaignOutput {
    std::string journal;
    std::string summary;
    std::string json;
    campaign::CampaignReport report;
};

CampaignOutput runCampaign(const fault::TestbenchFactory& factory,
                           const std::vector<fault::FaultSpec>& faults, unsigned workers,
                           SimTime cadence, const std::string& tag,
                           const std::function<void(campaign::CampaignRunner&)>& configure = {})
{
    const std::string path = ::testing::TempDir() + "gfi_snapshot_" + tag + ".jsonl";
    std::remove(path.c_str());
    campaign::CampaignRunner runner(factory);
    runner.setWorkers(workers);
    runner.setRecordTiming(false); // zero wall clock AND checkpoint bookkeeping
    runner.setCheckpointCadence(cadence > 0 ? cadence : -1);
    runner.setJournalPath(path);
    if (configure) {
        configure(runner);
    }
    CampaignOutput out;
    out.report = runner.run(faults);
    out.journal = slurp(path);
    out.summary = out.report.summaryTable();
    out.json = reportToJson(out.report);
    if (cadence > 0) {
        EXPECT_GT(runner.checkpointCount(), 0u) << tag << ": fork mode captured nothing";
    }
    std::remove(path.c_str());
    return out;
}

void expectForkEqualsScratch(const fault::TestbenchFactory& factory,
                             const std::vector<fault::FaultSpec>& faults, SimTime cadence,
                             const std::string& tag,
                             const std::function<void(campaign::CampaignRunner&)>& configure = {})
{
    const CampaignOutput scratch =
        runCampaign(factory, faults, 1, 0, tag + "_scratch", configure);
    ASSERT_EQ(scratch.report.runs.size(), faults.size());
    EXPECT_FALSE(scratch.journal.empty());

    const CampaignOutput forked =
        runCampaign(factory, faults, 1, cadence, tag + "_forked", configure);
    EXPECT_EQ(forked.journal, scratch.journal) << tag << ": forked journal differs";
    EXPECT_EQ(forked.summary, scratch.summary) << tag << ": forked summary differs";
    EXPECT_EQ(forked.json, scratch.json) << tag << ": forked JSON differs";

    const CampaignOutput wide =
        runCampaign(factory, faults, 8, cadence, tag + "_forked8", configure);
    EXPECT_EQ(wide.journal, scratch.journal) << tag << ": 8-worker forked journal differs";
    EXPECT_EQ(wide.summary, scratch.summary) << tag << ": 8-worker summary differs";
    EXPECT_EQ(wide.json, scratch.json) << tag << ": 8-worker JSON differs";
}

TEST(ForkFromGolden, DigitalCampaignByteIdentical)
{
    const auto factory = [] { return std::make_unique<duts::DigitalDutTestbench>(); };
    const duts::DigitalDutTestbench probe;
    std::vector<fault::FaultSpec> faults{fault::FaultSpec{}};
    const SimTime t = 2 * kMicrosecond + 7 * kNanosecond;
    for (const auto& [name, hook] : probe.sim().digital().instrumentation().all()) {
        faults.emplace_back(fault::BitFlipFault{name, 0, t});
        if (hook.width > 1) {
            faults.emplace_back(
                fault::BitFlipFault{name, hook.width - 1, 3 * kMicrosecond + 13 * kNanosecond});
        }
    }
    for (const std::string& sab : probe.digitalSaboteurNames()) {
        faults.emplace_back(fault::DigitalPulseFault{sab, t, 25 * kNanosecond});
        faults.emplace_back(fault::StuckAtFault{sab, digital::Logic::One, t, 0});
    }
    ASSERT_GE(faults.size(), 10u);
    expectForkEqualsScratch(factory, faults, 500 * kNanosecond, "digital");
}

TEST(ForkFromGolden, PllCampaignByteIdentical)
{
    pll::PllConfig cfg;
    cfg.duration = 20 * kMicrosecond;
    const auto factory = [cfg] { return std::make_unique<pll::PllTestbench>(cfg); };
    auto pulse = std::make_shared<fault::TrapezoidPulse>(2e-3, 300e-12, 300e-12, 1e-9);
    const pll::PllTestbench probe(cfg);
    const std::string reg = probe.sim().digital().instrumentation().names().front();
    const std::vector<fault::FaultSpec> faults{
        fault::FaultSpec{},
        fault::CurrentPulseFault{pll::names::kSabFilter, 8e-6, pulse},
        fault::CurrentPulseFault{pll::names::kSabVcoOut, 14e-6, pulse},
        fault::BitFlipFault{reg, 0, 12 * kMicrosecond},
        fault::ParametricFault{"pll/kvco", 1.15, 10 * kMicrosecond},
    };
    expectForkEqualsScratch(factory, faults, 4 * kMicrosecond, "pll",
                            [](campaign::CampaignRunner& r) {
                                r.setRetryPolicy(campaign::RetryPolicy{.maxAttempts = 2});
                            });
}

TEST(ForkFromGolden, AdcCampaignByteIdentical)
{
    adc::SarConfig cfg;
    cfg.inputLevels = {1.7, 2.9};
    const auto factory = [cfg] { return std::make_unique<adc::SarAdcTestbench>(cfg); };
    auto pulse = std::make_shared<fault::TrapezoidPulse>(5e-3, 500e-12, 500e-12, 1e-9);
    const adc::SarAdcTestbench probe(cfg);
    std::vector<fault::FaultSpec> faults{fault::FaultSpec{}};
    const auto names = probe.sim().digital().instrumentation().names();
    for (std::size_t i = 0; i < names.size() && i < 3; ++i) {
        faults.emplace_back(fault::BitFlipFault{names[i], 0, 12 * kMicrosecond});
    }
    faults.emplace_back(fault::CurrentPulseFault{"sab/dac_out", 14e-6, pulse});
    expectForkEqualsScratch(factory, faults, 5 * kMicrosecond, "adc");
}

// A forked run must record which checkpoint it used and how much it re-ran
// (when timing recording is on), and the summary table must show the savings.
TEST(ForkFromGolden, RecordsCheckpointDiagnostics)
{
    campaign::CampaignRunner runner([] { return std::make_unique<duts::DigitalDutTestbench>(); });
    runner.setCheckpointCadence(kMicrosecond);

    const duts::DigitalDutTestbench probe;
    const std::string target = probe.sim().digital().instrumentation().names().front();
    const std::vector<fault::FaultSpec> faults{
        fault::FaultSpec{},                                            // golden: never forks
        fault::BitFlipFault{target, 0, 3 * kMicrosecond + 100 * kNanosecond},
        fault::BitFlipFault{target, 0, 10 * kNanosecond},              // before 1st checkpoint
    };
    const campaign::CampaignReport report = runner.run(faults);
    ASSERT_EQ(report.runs.size(), 3u);

    EXPECT_EQ(report.runs[0].diagnostics.checkpointTime, 0);
    EXPECT_EQ(report.runs[2].diagnostics.checkpointTime, 0) << "no checkpoint before t_inj";

    const auto& forked = report.runs[1].diagnostics;
    EXPECT_GT(forked.checkpointTime, 0);
    EXPECT_LT(forked.checkpointTime, 3 * kMicrosecond + 100 * kNanosecond);
    EXPECT_GT(forked.resimulatedTime, 0);
    EXPECT_EQ(forked.checkpointTime + forked.resimulatedTime, probe.duration());

    const std::string summary = report.summaryTable();
    EXPECT_NE(summary.find("forked runs"), std::string::npos) << summary;

    // The journal/CSV rows surface the same numbers.
    const std::string line = campaign::CampaignJournal::entryToJson(1, report.runs[1]);
    EXPECT_NE(line.find("\"checkpoint_fs\": " + std::to_string(forked.checkpointTime)),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"resim_fs\": " + std::to_string(forked.resimulatedTime)),
              std::string::npos)
        << line;
    const auto parsed = campaign::CampaignJournal::parseLine(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->result.diagnostics.checkpointTime, forked.checkpointTime);
    EXPECT_EQ(parsed->result.diagnostics.resimulatedTime, forked.resimulatedTime);
}

TEST(ForkFromGolden, EnvVarEnablesAndExplicitOptOutWins)
{
    ::setenv("GFI_CHECKPOINT", "1e-6", 1);
    {
        campaign::CampaignRunner runner(
            [] { return std::make_unique<duts::DigitalDutTestbench>(); });
        runner.runGolden(); // cadence 0 defers to GFI_CHECKPOINT
        EXPECT_GE(runner.checkpointCount(), 3u);
    }
    {
        campaign::CampaignRunner runner(
            [] { return std::make_unique<duts::DigitalDutTestbench>(); });
        runner.setCheckpointCadence(-1); // explicit opt-out beats the environment
        runner.runGolden();
        EXPECT_EQ(runner.checkpointCount(), 0u);
    }
    ::unsetenv("GFI_CHECKPOINT");
}

// Mid-campaign journal resume interacts with forking: phase 1 journals the
// first k runs under fork mode and dies; phase 2 restores them and forks the
// rest. The converged journal must equal the from-scratch serial reference.
TEST(ForkFromGolden, JournalResumeConvergesToScratchBytes)
{
    const auto factory = [] { return std::make_unique<duts::DigitalDutTestbench>(); };
    const duts::DigitalDutTestbench probe;
    std::vector<fault::FaultSpec> faults{fault::FaultSpec{}};
    const auto names = probe.sim().digital().instrumentation().names();
    for (std::size_t i = 0; i < names.size() && i < 6; ++i) {
        faults.emplace_back(
            fault::BitFlipFault{names[i], 0, 2 * kMicrosecond + static_cast<SimTime>(i) * 37});
    }
    ASSERT_GE(faults.size(), 5u);

    const CampaignOutput reference = runCampaign(factory, faults, 1, 0, "resume_ref");

    const std::string path = ::testing::TempDir() + "gfi_snapshot_resume.jsonl";
    std::remove(path.c_str());
    const std::size_t k = faults.size() / 2;
    {
        campaign::CampaignRunner partial(factory);
        partial.setRecordTiming(false);
        partial.setCheckpointCadence(kMicrosecond);
        partial.setJournalPath(path);
        (void)partial.run({faults.begin(), faults.begin() + static_cast<long>(k)});
    }
    campaign::CampaignRunner resumed(factory);
    resumed.setRecordTiming(false);
    resumed.setCheckpointCadence(kMicrosecond);
    resumed.setJournalPath(path);
    resumed.setWorkers(2);
    const campaign::CampaignReport report = resumed.run(faults);

    for (std::size_t i = 0; i < k; ++i) {
        EXPECT_TRUE(report.runs[i].diagnostics.fromJournal) << i;
    }
    EXPECT_EQ(slurp(path), reference.journal);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// watchdog: budgets meter only post-restore work in fork mode

TEST(ForkFromGolden, WatchdogBudgetCountsOnlyTheSuffix)
{
    const auto factory = [] { return std::make_unique<duts::DigitalDutTestbench>(); };
    std::uint64_t goldenWaves = 0;
    {
        campaign::CampaignRunner probe(factory);
        probe.runGolden();
        goldenWaves = probe.golden().sim().digital().scheduler().deltaCycles();
    }
    ASSERT_GT(goldenWaves, 100u);

    const duts::DigitalDutTestbench probeTb;
    const std::string target = probeTb.sim().digital().instrumentation().names().front();
    // Inject late: the fork resumes from ~3 us of 4 us, so the suffix costs
    // roughly a quarter of the golden wave count.
    const fault::FaultSpec fault =
        fault::BitFlipFault{target, 0, 3 * kMicrosecond + 500 * kNanosecond};
    WatchdogConfig budget;
    budget.digitalWaves = goldenWaves * 6 / 10;

    campaign::CampaignRunner scratch(factory);
    scratch.setWatchdogConfig(budget);
    const campaign::RunResult fromScratch = scratch.runOne(fault);
    EXPECT_EQ(fromScratch.outcome, campaign::Outcome::Timeout)
        << "budget sized to trip a full-length run";

    campaign::CampaignRunner forked(factory);
    forked.setWatchdogConfig(budget);
    forked.setCheckpointCadence(kMicrosecond);
    const campaign::RunResult fromFork = forked.runOne(fault);
    EXPECT_NE(fromFork.outcome, campaign::Outcome::Timeout)
        << "forked run must be charged only for the post-restore suffix: "
        << fromFork.diagnostics.error;
    EXPECT_GT(fromFork.diagnostics.checkpointTime, 0);
}

// Retries must fall back to from-scratch simulation (a tightened solver step
// invalidates captured integrator history), and their diagnostics must say so.
TEST(ForkFromGolden, RetriesRunFromScratch)
{
    const auto factory = [] { return std::make_unique<duts::DigitalDutTestbench>(); };
    std::uint64_t goldenWaves = 0;
    {
        campaign::CampaignRunner probe(factory);
        probe.runGolden();
        goldenWaves = probe.golden().sim().digital().scheduler().deltaCycles();
    }
    const duts::DigitalDutTestbench probeTb;
    const std::string target = probeTb.sim().digital().instrumentation().names().front();
    const fault::FaultSpec fault =
        fault::BitFlipFault{target, 0, 3 * kMicrosecond + 500 * kNanosecond};

    // Budget below even the forked suffix: attempt 1 (forked) times out, the
    // retry re-simulates from scratch and times out again.
    WatchdogConfig budget;
    budget.digitalWaves = goldenWaves / 20;
    campaign::CampaignRunner runner(factory);
    runner.setWatchdogConfig(budget);
    runner.setCheckpointCadence(kMicrosecond);
    runner.setRetryPolicy(
        campaign::RetryPolicy{.maxAttempts = 2, .retryTimeout = true});
    const campaign::RunResult result = runner.runOne(fault);
    EXPECT_EQ(result.outcome, campaign::Outcome::Timeout);
    EXPECT_EQ(result.diagnostics.attempts, 2);
    EXPECT_EQ(result.diagnostics.checkpointTime, 0)
        << "the final (retried) attempt must not have forked";
}

// ---------------------------------------------------------------------------
// PRE006: fork mode requires Snapshottable stateful components

namespace {

/// Deliberately stateful and NOT Snapshottable: restoring a checkpoint would
/// silently resume it with a stale counter.
class ShadowCounter : public digital::Component {
public:
    ShadowCounter(digital::Circuit& c, std::string name, digital::LogicSignal& clk)
        : digital::Component(std::move(name))
    {
        c.process(this->name() + "/count", [this] { ++count_; }, {&clk});
    }

private:
    std::uint64_t count_ = 0;
};

fault::TestbenchFactory shadowedFactory()
{
    return [] {
        auto tb = std::make_unique<fault::Testbench>();
        auto& dig = tb->sim().digital();
        auto& clk = dig.logicSignal("tb/clk", digital::Logic::Zero);
        dig.add<digital::ClockGen>(dig, "tb/clkgen", clk, 100 * kNanosecond);
        dig.add<ShadowCounter>(dig, "tb/shadow", clk);
        tb->observeDigital("tb/clk");
        tb->setDuration(2 * kMicrosecond);
        return tb;
    };
}

} // namespace

TEST(ForkFromGolden, Pre006RejectsNonSnapshottableStatefulComponents)
{
    {
        auto tb = shadowedFactory()();
        const lint::Report rep = lint::preflightSnapshot(*tb);
        EXPECT_GT(rep.count(lint::Severity::Error), 0u);
        EXPECT_NE(rep.table().find("PRE006"), std::string::npos) << rep.table();
        EXPECT_NE(rep.table().find("tb/shadow"), std::string::npos) << rep.table();
    }
    // The campaign preflight only applies the rule while forking is enabled.
    {
        campaign::CampaignRunner runner(shadowedFactory());
        runner.setCheckpointCadence(kMicrosecond);
        try {
            (void)runner.run({fault::FaultSpec{}});
            FAIL() << "fork-from-golden accepted a non-Snapshottable stateful component";
        } catch (const lint::PreflightError& e) {
            EXPECT_NE(std::string(e.what()).find("PRE006"), std::string::npos) << e.what();
            EXPECT_NE(std::string(e.what()).find("tb/shadow"), std::string::npos) << e.what();
        }
    }
    {
        campaign::CampaignRunner runner(shadowedFactory());
        runner.setCheckpointCadence(-1); // forking off: the design is acceptable
        const campaign::CampaignReport report = runner.run({fault::FaultSpec{}});
        EXPECT_EQ(report.runs.size(), 1u);
    }
    // All shipped testbenches must pass PRE006.
    {
        duts::DigitalDutTestbench dut;
        EXPECT_EQ(lint::preflightSnapshot(dut).count(lint::Severity::Error), 0u);
        pll::PllConfig cfg;
        pll::PllTestbench pllTb(cfg);
        EXPECT_EQ(lint::preflightSnapshot(pllTb).count(lint::Severity::Error), 0u);
        adc::SarAdcTestbench adcTb;
        EXPECT_EQ(lint::preflightSnapshot(adcTb).count(lint::Severity::Error), 0u);
    }
}

} // namespace
} // namespace gfi
