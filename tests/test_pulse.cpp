// Unit and property tests for the SEU current-pulse models (paper Figure 1)
// and the trapezoid <-> double-exponential fits (Figure 1b).

#include "core/pulse.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gfi::fault {
namespace {

TEST(TrapezoidPulse, Fig6ParametersShape)
{
    // The paper's Figure 6 pulse: RT=100 ps, FT=300 ps, PW=500 ps, PA=10 mA.
    TrapezoidPulse p(10e-3, 100e-12, 300e-12, 500e-12);
    EXPECT_DOUBLE_EQ(p.current(-1e-12), 0.0);
    EXPECT_DOUBLE_EQ(p.current(0.0), 0.0);
    EXPECT_NEAR(p.current(50e-12), 5e-3, 1e-9);   // mid-rise
    EXPECT_NEAR(p.current(100e-12), 10e-3, 1e-9); // top of rise
    EXPECT_NEAR(p.current(150e-12), 10e-3, 1e-9); // plateau
    EXPECT_NEAR(p.current(200e-12), 10e-3, 1e-9); // end of plateau
    EXPECT_NEAR(p.current(350e-12), 5e-3, 1e-9);  // mid-fall
    EXPECT_DOUBLE_EQ(p.current(500e-12), 0.0);
    EXPECT_DOUBLE_EQ(p.current(600e-12), 0.0);
    EXPECT_DOUBLE_EQ(p.peak(), 10e-3);
    EXPECT_DOUBLE_EQ(p.duration(), 500e-12);
}

TEST(TrapezoidPulse, ChargeFormula)
{
    TrapezoidPulse p(10e-3, 100e-12, 300e-12, 500e-12);
    // Q = PA * (plateau + (RT+FT)/2) = 10mA * (100 + 200) ps = 3 pC.
    EXPECT_NEAR(p.charge(), 3e-12, 1e-18);
}

TEST(TrapezoidPulse, ChargeMatchesNumericIntegral)
{
    TrapezoidPulse p(2e-3, 40e-12, 120e-12, 300e-12);
    double q = 0.0;
    const double dt = 1e-15;
    for (double t = 0.0; t < p.duration(); t += dt) {
        q += p.current(t) * dt;
    }
    EXPECT_NEAR(q, p.charge(), p.charge() * 1e-2);
}

TEST(TrapezoidPulse, CornersOrdered)
{
    TrapezoidPulse p(1e-3, 100e-12, 300e-12, 500e-12);
    const auto corners = p.corners();
    ASSERT_EQ(corners.size(), 4u);
    EXPECT_DOUBLE_EQ(corners[0], 0.0);
    EXPECT_DOUBLE_EQ(corners[1], 100e-12);
    EXPECT_DOUBLE_EQ(corners[2], 200e-12);
    EXPECT_DOUBLE_EQ(corners[3], 500e-12);
}

TEST(TrapezoidPulse, RejectsBadParameters)
{
    EXPECT_THROW(TrapezoidPulse(1e-3, -1e-12, 1e-12, 5e-12), std::invalid_argument);
    EXPECT_THROW(TrapezoidPulse(1e-3, 3e-12, 3e-12, 5e-12), std::invalid_argument);
    EXPECT_THROW(TrapezoidPulse(1e-3, 1e-12, 1e-12, 0.0), std::invalid_argument);
}

TEST(TrapezoidPulse, ZeroEdgeTimesAreRectangular)
{
    TrapezoidPulse p(1e-3, 0.0, 0.0, 100e-12);
    EXPECT_DOUBLE_EQ(p.current(50e-12), 1e-3);
    EXPECT_NEAR(p.charge(), 1e-3 * 100e-12, 1e-20);
}

TEST(DoubleExpPulse, PeakBelowI0AndAtAnalyticTime)
{
    DoubleExpPulse p(10e-3, 50e-12, 500e-12);
    const double tp = p.peakTime();
    EXPECT_GT(tp, 0.0);
    EXPECT_LT(p.peak(), 10e-3);
    // The derivative vanishes at the peak.
    const double eps = 1e-15;
    EXPECT_GT(p.current(tp), p.current(tp - 10 * eps));
    EXPECT_GT(p.current(tp), p.current(tp + 10 * eps));
}

TEST(DoubleExpPulse, ChargeAnalytic)
{
    DoubleExpPulse p(10e-3, 50e-12, 500e-12);
    EXPECT_NEAR(p.charge(), 10e-3 * 450e-12, 1e-18);
    // Numeric cross-check.
    double q = 0.0;
    const double dt = 1e-14;
    for (double t = 0.0; t < 30.0 * 500e-12; t += dt) {
        q += p.current(t) * dt;
    }
    EXPECT_NEAR(q, p.charge(), p.charge() * 1e-2);
}

TEST(DoubleExpPulse, RejectsBadTimeConstants)
{
    EXPECT_THROW(DoubleExpPulse(1e-3, 5e-12, 5e-12), std::invalid_argument);
    EXPECT_THROW(DoubleExpPulse(1e-3, 0.0, 5e-12), std::invalid_argument);
}

TEST(PulseFit, TrapezoidFromDoubleExpPreservesPeakAndCharge)
{
    DoubleExpPulse dexp(10e-3, 50e-12, 500e-12);
    const TrapezoidPulse trap = fitTrapezoid(dexp);
    EXPECT_NEAR(trap.peak(), dexp.peak(), dexp.peak() * 1e-9);
    EXPECT_NEAR(trap.charge(), dexp.charge(), dexp.charge() * 1e-6);
}

TEST(PulseFit, DoubleExpFromTrapezoidPreservesPeakAndCharge)
{
    TrapezoidPulse trap(10e-3, 100e-12, 300e-12, 500e-12);
    const DoubleExpPulse dexp = fitDoubleExp(trap);
    EXPECT_NEAR(dexp.peak(), trap.peak(), trap.peak() * 1e-3);
    EXPECT_NEAR(dexp.charge(), trap.charge(), trap.charge() * 1e-3);
}

TEST(PulseFit, RoundTripIsStable)
{
    DoubleExpPulse original(8e-3, 40e-12, 400e-12);
    const TrapezoidPulse trap = fitTrapezoid(original);
    const DoubleExpPulse back = fitDoubleExp(trap);
    EXPECT_NEAR(back.peak(), original.peak(), original.peak() * 0.01);
    EXPECT_NEAR(back.charge(), original.charge(), original.charge() * 0.01);
}

TEST(PulseShape, CloneIsDeep)
{
    TrapezoidPulse p(1e-3, 1e-12, 1e-12, 3e-12);
    const std::unique_ptr<PulseShape> c = p.clone();
    EXPECT_DOUBLE_EQ(c->current(1.5e-12), p.current(1.5e-12));
    EXPECT_EQ(c->describe(), p.describe());
}

TEST(PulseShape, DescribeMentionsParameters)
{
    TrapezoidPulse p(10e-3, 100e-12, 300e-12, 500e-12);
    const std::string d = p.describe();
    EXPECT_NE(d.find("10 mA"), std::string::npos);
    EXPECT_NE(d.find("100 ps"), std::string::npos);
}

// Property sweep over the paper's Figure 8 parameter sets: charge ordering
// must follow the amplitude x width product.
struct Fig8Params {
    double pa, rt, ft, pw;
};

class Fig8Charges : public ::testing::TestWithParam<Fig8Params> {};

TEST_P(Fig8Charges, ChargeIsPositiveAndBounded)
{
    const auto [pa, rt, ft, pw] = GetParam();
    TrapezoidPulse p(pa, rt, ft, pw);
    EXPECT_GT(p.charge(), 0.0);
    EXPECT_LE(p.charge(), pa * pw); // bounded by the enclosing rectangle
    EXPECT_GE(p.charge(), pa * (pw - rt - ft)); // at least the plateau
}

INSTANTIATE_TEST_SUITE_P(PaperParameterSets, Fig8Charges,
                         ::testing::Values(Fig8Params{2e-3, 100e-12, 100e-12, 300e-12},
                                           Fig8Params{8e-3, 100e-12, 100e-12, 300e-12},
                                           Fig8Params{10e-3, 40e-12, 40e-12, 120e-12},
                                           Fig8Params{10e-3, 180e-12, 180e-12, 540e-12},
                                           Fig8Params{10e-3, 100e-12, 300e-12, 500e-12}));

} // namespace
} // namespace gfi::fault
