// Processor-injection supervisor: architectural taxonomy, deterministic
// sampling and campaign-engine integration.
//
// The contract under test: the supervisor's COAST-style verdict (masked /
// corrected / detected / SDC / hang / contained) is a pure function of the
// journaled RunResult, so it survives journal resume and parallel ordered
// commits byte-for-byte; the no-halt detector classifies a seeded
// never-terminating run in a small fraction of the wall-clock watchdog
// budget; and hardening the data RAM with SEC-DED + scrubbing strictly
// reduces the RAM-target SDC cross-section.

#include "core/journal.hpp"
#include "inject/supervisor.hpp"
#include "inject/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <variant>

namespace gfi::inject {
namespace {

std::string slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

duts::CpuSystemConfig configFor(duts::HardeningMode mode)
{
    duts::CpuSystemConfig cfg;
    cfg.hardening = duts::hardeningPreset(mode);
    return cfg;
}

// ---------------------------------------------------------------------------
// Target model

TEST(InjectTargets, HookNamesMapOntoArchitecturalClasses)
{
    EXPECT_EQ(targetClassOf("sys/core/pc"), TargetClass::Pc);
    EXPECT_EQ(targetClassOf("sys/core/acc"), TargetClass::Acc);
    EXPECT_EQ(targetClassOf("sys/core/halt"), TargetClass::Ctrl);
    EXPECT_EQ(targetClassOf("sys/ram/w16"), TargetClass::Ram);
    EXPECT_EQ(targetClassOf("sys/outreg"), TargetClass::OutReg);
    EXPECT_EQ(targetClassOf("sys/outreg/copy2"), TargetClass::OutReg);
    EXPECT_EQ(targetClassOf("sys/outreg/code"), TargetClass::OutReg);
    // Supervisor meta-hooks are evidence, not injection targets.
    EXPECT_EQ(targetClassOf(duts::kHangHook), TargetClass::Other);
    EXPECT_EQ(targetClassOf(duts::kMemImageHook), TargetClass::Other);
}

TEST(InjectTargets, EnumerationCoversEveryClassAndExcludesMetaHooks)
{
    InjectionSupervisor sup(configFor(duts::HardeningMode::None));
    const std::vector<ArchTarget> targets = sup.targets();
    ASSERT_FALSE(targets.empty());
    std::set<TargetClass> seen;
    for (const ArchTarget& t : targets) {
        EXPECT_EQ(t.hook.find("/sup/"), std::string::npos) << t.hook;
        EXPECT_GT(t.width, 0) << t.hook;
        seen.insert(t.cls);
    }
    for (TargetClass tc : kReportTargetClasses) {
        EXPECT_TRUE(seen.count(tc) > 0) << "no targets of class " << toString(tc);
    }
    // Deterministic (sorted) order.
    EXPECT_TRUE(std::is_sorted(targets.begin(), targets.end(),
                               [](const ArchTarget& a, const ArchTarget& b) {
                                   return a.hook < b.hook;
                               }));
}

TEST(InjectTargets, GoldenProgramHaltsBeforeTheHangDeadline)
{
    InjectionSupervisor sup;
    const SimTime halt = sup.goldenHaltTime();
    EXPECT_GT(halt, 0);
    duts::CpuSystemTestbench probe;
    EXPECT_LT(halt, probe.hangDeadline());
}

TEST(InjectTargets, GoldenHangIsAConfigurationError)
{
    duts::CpuSystemConfig cfg;
    // Odd stride: the 8-bit sum never wraps to zero within 256 iterations of
    // the deadline, so the golden program itself hangs.
    cfg.program = {duts::asm1(duts::Op::Ldi, 3),  duts::asm1(duts::Op::Sta, 16),
                   duts::asm1(duts::Op::Ldi, 0),  duts::asm1(duts::Op::Add, 16),
                   duts::asm1(duts::Op::Out),     duts::asm1(duts::Op::Sta, 17),
                   duts::asm1(duts::Op::Jnz, 3),  duts::asm1(duts::Op::Out),
                   duts::asm1(duts::Op::Hlt)};
    InjectionSupervisor sup(cfg);
    EXPECT_THROW((void)sup.goldenHaltTime(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Deterministic sampling

TEST(InjectSampling, SameSeedSameFaultsAcrossSupervisors)
{
    InjectionSupervisor a;
    InjectionSupervisor b;
    const auto fa = a.sampleFaults(40, 0x5EED);
    const auto fb = b.sampleFaults(40, 0x5EED);
    ASSERT_EQ(fa.size(), 40u);
    ASSERT_EQ(fb.size(), 40u);
    for (std::size_t i = 0; i < fa.size(); ++i) {
        EXPECT_EQ(fault::describe(fa[i]), fault::describe(fb[i])) << "fault " << i;
    }
    const auto fc = a.sampleFaults(40, 0x5EED + 1);
    int differing = 0;
    for (std::size_t i = 0; i < fa.size(); ++i) {
        differing += fault::describe(fa[i]) != fault::describe(fc[i]) ? 1 : 0;
    }
    EXPECT_GT(differing, 20) << "a different seed must reshuffle the sample";
}

TEST(InjectSampling, SampledTriplesRespectWidthsAndTheGoldenWindow)
{
    InjectionSupervisor sup;
    const SimTime halt = sup.goldenHaltTime();
    const SimTime period = sup.clockPeriod();
    std::map<std::string, int> widths;
    for (const ArchTarget& t : sup.targets()) {
        widths[t.hook] = t.width;
    }
    for (const fault::FaultSpec& spec : sup.sampleFaults(120, 7)) {
        const auto* flip = std::get_if<fault::BitFlipFault>(&spec);
        ASSERT_NE(flip, nullptr);
        ASSERT_TRUE(widths.count(flip->target) > 0) << flip->target;
        EXPECT_GE(flip->bit, 0);
        EXPECT_LT(flip->bit, widths[flip->target]);
        EXPECT_GE(flip->time, period);
        EXPECT_LT(flip->time, halt + period);
        EXPECT_NE(flip->time % period, 0) << "injection must land mid-cycle";
    }
}

TEST(InjectSampling, ExhaustiveFaultsCoverOneClassCompletely)
{
    InjectionSupervisor sup(configFor(duts::HardeningMode::None));
    const auto faults = sup.exhaustiveFaults(TargetClass::Pc, {157 * kNanosecond});
    // TinyCpu's PC is 5 bits wide; nothing else maps onto the PC class.
    EXPECT_EQ(faults.size(), 5u);
    for (const fault::FaultSpec& spec : faults) {
        const auto* flip = std::get_if<fault::BitFlipFault>(&spec);
        ASSERT_NE(flip, nullptr);
        EXPECT_EQ(flip->target, "sys/core/pc");
    }
}

// ---------------------------------------------------------------------------
// classifyRun: the taxonomy decision tree on synthetic journal entries

campaign::RunResult syntheticRun(campaign::Outcome o,
                                 std::vector<std::string> erred = {},
                                 std::vector<std::string> corrupted = {})
{
    campaign::RunResult r;
    r.fault = fault::BitFlipFault{"sys/core/acc", 0, kMicrosecond};
    r.outcome = o;
    r.erredSignals = std::move(erred);
    r.corruptedState = std::move(corrupted);
    return r;
}

TEST(InjectClassify, DecisionTreePrecedence)
{
    using campaign::Outcome;
    // Containment outcomes dominate everything.
    EXPECT_EQ(InjectionSupervisor::classifyRun(
                  syntheticRun(Outcome::Timeout, {"sys/out[0]"}, {duts::kHangHook})),
              CpuClass::Contained);
    EXPECT_EQ(InjectionSupervisor::classifyRun(syntheticRun(Outcome::SimError)),
              CpuClass::Contained);
    EXPECT_EQ(InjectionSupervisor::classifyRun(syntheticRun(Outcome::Diverged)),
              CpuClass::Contained);
    // Hang beats detection and data corruption.
    EXPECT_EQ(InjectionSupervisor::classifyRun(syntheticRun(
                  Outcome::Failure, {"sys/out[3]"},
                  {duts::kHangHook, duts::kDetectedHook, duts::kMemImageHook})),
              CpuClass::Hang);
    // Detected beats SDC (the mechanism raised its flag, even if data leaked).
    EXPECT_EQ(InjectionSupervisor::classifyRun(syntheticRun(
                  Outcome::Failure, {"sys/out[3]"}, {duts::kDetectedHook})),
              CpuClass::Detected);
    // Wrong output stream or wrong memory image, no flag -> SDC.
    EXPECT_EQ(InjectionSupervisor::classifyRun(
                  syntheticRun(Outcome::TransientError, {"sys/out[1]"})),
              CpuClass::SilentDataCorruption);
    EXPECT_EQ(InjectionSupervisor::classifyRun(
                  syntheticRun(Outcome::Latent, {}, {duts::kMemImageHook})),
              CpuClass::SilentDataCorruption);
    // Golden-identical behaviour, but a repair counter moved -> Corrected.
    EXPECT_EQ(InjectionSupervisor::classifyRun(
                  syntheticRun(Outcome::Latent, {}, {duts::kCorrectedHook})),
              CpuClass::Corrected);
    // Nothing observable at all -> Masked (latent junk outside the
    // architectural data words stays masked, software never saw it).
    EXPECT_EQ(InjectionSupervisor::classifyRun(syntheticRun(Outcome::Silent)),
              CpuClass::Masked);
    EXPECT_EQ(InjectionSupervisor::classifyRun(
                  syntheticRun(Outcome::Latent, {}, {"sys/ram/w5"})),
              CpuClass::Masked);
}

// ---------------------------------------------------------------------------
// End-to-end verdicts per hardening mechanism

CpuClass classOfSingleFault(duts::HardeningMode mode, const fault::FaultSpec& f)
{
    InjectionSupervisor sup(configFor(mode));
    const SupervisorReport report = sup.run({f});
    EXPECT_EQ(report.classes.size(), 1u);
    return report.classes.empty() ? CpuClass::Contained : report.classes.front();
}

TEST(InjectVerdicts, OddStrideUpsetHangsAndTripsTheNoHaltDetectorFast)
{
    InjectionSupervisor sup(configFor(duts::HardeningMode::None));
    // Stride 16 -> 17 (odd): the 8-bit sum needs 256 iterations to wrap, far
    // beyond the hang deadline. The staged run stops at the deadline instead
    // of simulating out the watchdog budget.
    WatchdogConfig watchdog;
    watchdog.wallClockSeconds = 5.0;
    sup.runner().setWatchdogConfig(watchdog);
    const SupervisorReport report =
        sup.run({fault::FaultSpec{fault::BitFlipFault{"sys/ram/w16", 0, 157 * kNanosecond}}});
    ASSERT_EQ(report.classes.size(), 1u);
    EXPECT_EQ(report.classes.front(), CpuClass::Hang);
    const campaign::RunResult& r = report.campaign.runs.front();
    EXPECT_NE(r.outcome, campaign::Outcome::Timeout)
        << "the no-halt detector must fire long before the wall-clock watchdog";
    // Acceptance bound: classified in under 10 % of the watchdog budget.
    EXPECT_LT(r.diagnostics.wallSeconds, 0.1 * watchdog.wallClockSeconds);
}

TEST(InjectVerdicts, EvenStrideUpsetIsSilentDataCorruption)
{
    // Stride 16 -> 24 (bit 3): still halts (32 iterations), but the streamed
    // partial sums are wrong -> SDC.
    EXPECT_EQ(classOfSingleFault(
                  duts::HardeningMode::None,
                  fault::FaultSpec{fault::BitFlipFault{"sys/ram/w16", 3, 157 * kNanosecond}}),
              CpuClass::SilentDataCorruption);
}

TEST(InjectVerdicts, DwcOutputRegisterFlipIsDetected)
{
    // Either copy trips the mismatch comparator; the primary copy also leaks
    // the wrong value to the output for one cycle — detection has precedence.
    EXPECT_EQ(classOfSingleFault(duts::HardeningMode::Dwc,
                                 fault::FaultSpec{fault::BitFlipFault{
                                     "sys/outreg/copy0", 2, 557 * kNanosecond}}),
              CpuClass::Detected);
    EXPECT_EQ(classOfSingleFault(duts::HardeningMode::Dwc,
                                 fault::FaultSpec{fault::BitFlipFault{
                                     "sys/outreg/copy1", 5, 557 * kNanosecond}}),
              CpuClass::Detected);
}

TEST(InjectVerdicts, TmrOutputRegisterFlipIsMasked)
{
    EXPECT_EQ(classOfSingleFault(duts::HardeningMode::Tmr,
                                 fault::FaultSpec{fault::BitFlipFault{
                                     "sys/outreg/copy1", 3, 557 * kNanosecond}}),
              CpuClass::Masked);
}

TEST(InjectVerdicts, EccRamSingleBitUpsetIsCorrected)
{
    // The stride word is re-read every loop iteration: the SEC-DED read path
    // absorbs the flip and the correction counter moves.
    EXPECT_EQ(classOfSingleFault(
                  duts::HardeningMode::EccScrub,
                  fault::FaultSpec{fault::BitFlipFault{"sys/ram/w16", 0, 157 * kNanosecond}}),
              CpuClass::Corrected);
}

TEST(InjectVerdicts, EccRamDoubleBitUpsetIsDetectedByTheScrubber)
{
    // Double flip in the spill word *after* the program halted: no read or
    // rewrite ever touches it again, so only the scrubbing sweep meets the
    // uncorrectable word and flags it.
    EXPECT_EQ(classOfSingleFault(duts::HardeningMode::EccScrub,
                                 fault::FaultSpec{fault::DoubleBitFlipFault{
                                     "sys/ram/w17", 2, 7, 2 * kMicrosecond}}),
              CpuClass::Detected);
}

// ---------------------------------------------------------------------------
// Hardening efficiency: the RAM-target SDC cross-section must shrink

std::vector<fault::FaultSpec> dataWordFaults(InjectionSupervisor& sup)
{
    // Exhaustive single-bit coverage of the two architectural data words at
    // two post-store injection times.
    const std::vector<SimTime> times{157 * kNanosecond, 457 * kNanosecond};
    std::vector<fault::FaultSpec> faults;
    for (const ArchTarget& t : sup.targets()) {
        if (t.cls != TargetClass::Ram) {
            continue;
        }
        const auto endsWith = [&t](const char* suffix) {
            const std::string s(suffix);
            return t.hook.size() >= s.size() &&
                   t.hook.compare(t.hook.size() - s.size(), s.size(), s) == 0;
        };
        if (!endsWith("/w16") && !endsWith("/w17")) {
            continue;
        }
        for (int bit = 0; bit < t.width; ++bit) {
            for (SimTime time : times) {
                faults.emplace_back(fault::BitFlipFault{t.hook, bit, time});
            }
        }
    }
    return faults;
}

TEST(InjectHardening, EccScrubEliminatesRamSdc)
{
    InjectionSupervisor none(configFor(duts::HardeningMode::None));
    const SupervisorReport unprotected = none.run(dataWordFaults(none));
    InjectionSupervisor ecc(configFor(duts::HardeningMode::EccScrub));
    const SupervisorReport hardened = ecc.run(dataWordFaults(ecc));

    const campaign::Proportion sdcNone =
        unprotected.rate(TargetClass::Ram, CpuClass::SilentDataCorruption);
    const campaign::Proportion sdcEcc =
        hardened.rate(TargetClass::Ram, CpuClass::SilentDataCorruption);
    EXPECT_GT(sdcNone.successes, 0) << "raw RAM must show data corruption";
    EXPECT_EQ(sdcEcc.successes, 0) << "SEC-DED + scrub must absorb single-bit upsets";
    EXPECT_GT(sdcNone.estimate, sdcEcc.estimate) << "strict decrease None -> ECC+scrub";
    // Where did the hardened upsets go? Into Corrected/Masked, not Hang.
    const auto hangEcc = hardened.rate(TargetClass::Ram, CpuClass::Hang);
    EXPECT_EQ(hangEcc.successes, 0);
}

// ---------------------------------------------------------------------------
// Campaign-engine integration: byte-identical journals, resume, reports

TEST(InjectCampaign, JournalsAreByteIdenticalSerialVsEightWorkers)
{
    duts::CpuSystemConfig cfg = configFor(duts::HardeningMode::None);
    InjectionSupervisor seedSup(cfg);
    const auto faults = seedSup.sampleFaults(24, 0xBEEF);

    std::string serialJournal;
    std::vector<CpuClass> serialClasses;
    for (unsigned workers : {1u, 8u}) {
        const std::string path = ::testing::TempDir() + "gfi_inject_" +
                                 std::to_string(workers) + ".jsonl";
        std::remove(path.c_str());
        InjectionSupervisor sup(cfg);
        sup.runner().setWorkers(workers);
        sup.runner().setRecordTiming(false);
        sup.runner().setJournalPath(path);
        const SupervisorReport report = sup.run(faults);
        ASSERT_EQ(report.classes.size(), faults.size());
        if (workers == 1) {
            serialJournal = slurp(path);
            serialClasses = report.classes;
            EXPECT_FALSE(serialJournal.empty());
        } else {
            EXPECT_EQ(slurp(path), serialJournal)
                << "journal not byte-identical at " << workers << " workers";
            EXPECT_EQ(report.classes, serialClasses);
        }
        std::remove(path.c_str());
    }
}

TEST(InjectCampaign, RestoredJournalEntriesReclassifyIdentically)
{
    duts::CpuSystemConfig cfg = configFor(duts::HardeningMode::None);
    const std::string path = ::testing::TempDir() + "gfi_inject_resume.jsonl";
    std::remove(path.c_str());

    InjectionSupervisor first(cfg);
    first.runner().setRecordTiming(false);
    first.runner().setJournalPath(path);
    const auto faults = first.sampleFaults(12, 0xCAFE);
    const SupervisorReport fresh = first.run(faults);

    // A second supervisor over the same journal restores every entry and must
    // reach the same architectural verdicts without re-simulating.
    InjectionSupervisor second(cfg);
    second.runner().setRecordTiming(false);
    second.runner().setJournalPath(path);
    const SupervisorReport resumed = second.run(faults);
    ASSERT_EQ(resumed.classes.size(), fresh.classes.size());
    EXPECT_EQ(resumed.classes, fresh.classes);
    for (const campaign::RunResult& r : resumed.campaign.runs) {
        EXPECT_TRUE(r.diagnostics.fromJournal);
    }
    std::remove(path.c_str());
}

TEST(InjectReport, TableCsvJsonCarryTheCrossSections)
{
    InjectionSupervisor sup(configFor(duts::HardeningMode::None));
    const SupervisorReport report = sup.run(sup.sampleFaults(16, 0xF00D));
    const std::string table = report.table();
    EXPECT_NE(table.find("target class"), std::string::npos);
    EXPECT_NE(table.find("sdc"), std::string::npos);
    EXPECT_NE(table.find("all"), std::string::npos);

    const std::string csv = report.csv();
    EXPECT_EQ(csv.rfind("target_class,cpu_class,count,runs,rate,low,high\n", 0), 0u);
    // One row per (populated target class) x (cpu class).
    int populated = 0;
    for (TargetClass tc : kReportTargetClasses) {
        populated += report.runsFor(tc) > 0 ? 1 : 0;
    }
    const long rows = std::count(csv.begin(), csv.end(), '\n') - 1;
    EXPECT_EQ(rows, populated * static_cast<long>(kAllCpuClasses.size()));

    const std::string json = report.json();
    EXPECT_EQ(json.rfind("{\"samples\": 16", 0), 0u);
    for (CpuClass c : kAllCpuClasses) {
        EXPECT_NE(json.find(std::string("\"") + toString(c) + "\""), std::string::npos);
    }
}

// A class with zero samples has no rate estimate: every rendering must say
// "n/a" / null instead of the degenerate 0 % [0, 0] Wilson interval.
TEST(InjectReport, ZeroSampleClassesRenderNotAvailable)
{
    EXPECT_EQ(formatRateCell(campaign::wilsonInterval(0, 0)), "n/a");
    EXPECT_NE(formatRateCell(campaign::wilsonInterval(0, 10)), "n/a")
        << "zero count over real trials keeps its interval";

    // An empty report: every cross-section cell is a zero-sample cell.
    SupervisorReport empty;
    empty.rebuild();
    const std::string table = empty.table();
    EXPECT_NE(table.find("n/a"), std::string::npos) << table;
    EXPECT_EQ(table.find("[0.0, 0.0]"), std::string::npos) << table;

    const std::string json = empty.json();
    EXPECT_NE(json.find("\"rate\": null"), std::string::npos) << json;
    EXPECT_NE(json.find("\"low\": null"), std::string::npos) << json;

    const std::string csv = empty.csv();
    if (csv.find('\n') != csv.rfind('\n')) { // any data rows at all
        EXPECT_NE(csv.find(",n/a,n/a,n/a"), std::string::npos) << csv;
    }

    // The sweep table shares the formatter: an empty entry renders n/a, not
    // a fake 0 % certainty.
    SweepReport sweep;
    SweepEntry entry;
    entry.mode = duts::HardeningMode::None;
    sweep.entries.push_back(entry);
    EXPECT_NE(sweep.table().find("n/a"), std::string::npos) << sweep.table();
}

TEST(InjectSweep, HardeningSweepComparesModes)
{
    duts::CpuSystemConfig base;
    SweepOptions options;
    options.samples = 10;
    options.seed = 0x51;
    options.recordTiming = false;
    const SweepReport sweep = runHardeningSweep(
        base, {duts::HardeningMode::None, duts::HardeningMode::EccScrub}, options);
    ASSERT_EQ(sweep.entries.size(), 2u);
    EXPECT_EQ(sweep.report(duts::HardeningMode::None).classes.size(), 10u);
    EXPECT_THROW((void)sweep.report(duts::HardeningMode::Tmr), std::out_of_range);

    const std::string table = sweep.table();
    EXPECT_NE(table.find("ECC+scrub"), std::string::npos);
    const std::string csv = sweep.csv();
    EXPECT_EQ(csv.rfind("mode,target_class,cpu_class,count,runs,rate,low,high\n", 0), 0u);
    EXPECT_NE(csv.find("ECC+scrub,"), std::string::npos);
    const std::string json = sweep.json();
    EXPECT_EQ(json.rfind("{\"sweep\": [", 0), 0u);
    EXPECT_NE(json.find("\"mode\": \"none\""), std::string::npos);
}

} // namespace
} // namespace gfi::inject
