// Assorted contract tests: VCO unit behavior, mixed-simulator error paths,
// periodic pulse sources and formatting edge cases.

#include "ams/mixed_sim.hpp"
#include "analog/passive.hpp"
#include "analog/solver.hpp"
#include "analog/sources.hpp"
#include "pll/vco.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gfi {
namespace {

TEST(BehavioralVcoTest, FreeRunsAtCenterFrequency)
{
    analog::AnalogSystem sys;
    const auto ctrl = sys.node("ctrl");
    const auto out = sys.node("out");
    sys.add<analog::VoltageSource>(sys, "VC", ctrl, analog::kGround, 0.0);
    auto& vco = sys.add<pll::BehavioralVco>(sys, "vco", ctrl, out, 10e6, 1e6, 2.5, 2.5);
    sys.add<analog::Resistor>(sys, "RL", out, analog::kGround, 1e4);

    analog::TransientSolver solver(sys);
    int crossings = 0;
    solver.addMonitor(out, 2.5, analog::CrossingMonitor::Edge::Rising,
                      [&](double, bool) { ++crossings; });
    solver.solveDc();
    while (solver.time() < 10e-6) {
        solver.advanceTo(10e-6);
    }
    EXPECT_NEAR(crossings, 100, 2); // 10 MHz for 10 us
    EXPECT_GT(vco.phase(), 0.0);
}

TEST(BehavioralVcoTest, FrequencyTracksControlAndClamps)
{
    analog::AnalogSystem sys;
    const auto ctrl = sys.node("ctrl");
    const auto out = sys.node("out");
    auto& vco = sys.add<pll::BehavioralVco>(sys, "vco", ctrl, out, 10e6, 1e6, 2.5, 2.5);
    EXPECT_DOUBLE_EQ(vco.frequency(0.0), 10e6);
    EXPECT_DOUBLE_EQ(vco.frequency(5.0), 15e6);
    EXPECT_DOUBLE_EQ(vco.frequency(-20.0), 0.05 * 10e6);  // clamped low
    EXPECT_DOUBLE_EQ(vco.frequency(1000.0), 5.0 * 10e6);  // clamped high
}

TEST(BehavioralVcoTest, OutputSpansOffsetPlusMinusAmplitude)
{
    analog::AnalogSystem sys;
    const auto ctrl = sys.node("ctrl");
    const auto out = sys.node("out");
    sys.add<analog::VoltageSource>(sys, "VC", ctrl, analog::kGround, 0.0);
    sys.add<pll::BehavioralVco>(sys, "vco", ctrl, out, 10e6, 1e6, 2.5, 2.5);
    sys.add<analog::Resistor>(sys, "RL", out, analog::kGround, 1e4);
    analog::TransientSolver solver(sys);
    solver.solveDc();
    double lo = 1e9;
    double hi = -1e9;
    solver.onAccept([&](double) {
        lo = std::min(lo, sys.voltage(out));
        hi = std::max(hi, sys.voltage(out));
    });
    solver.advanceTo(1e-6);
    EXPECT_NEAR(lo, 0.0, 0.05);
    EXPECT_NEAR(hi, 5.0, 0.05);
}

TEST(MixedSimulatorTest, SolverAccessBeforeElaborateThrows)
{
    ams::MixedSimulator sim;
    EXPECT_THROW((void)sim.solver(), std::logic_error);
    sim.analog().node("n");
    sim.analog().add<analog::Resistor>(sim.analog(), "R", sim.analog().node("n"),
                                       analog::kGround, 1e3);
    sim.elaborate();
    EXPECT_NO_THROW((void)sim.solver());
    // Idempotent.
    sim.elaborate();
}

TEST(PulseVoltageTest, PeriodicRepetition)
{
    analog::AnalogSystem sys;
    const auto n = sys.node("n");
    sys.add<analog::PulseVoltage>(sys, "VP", n, analog::kGround, 0.0, 1.0,
                                  /*delay=*/1e-6, /*rise=*/10e-9, /*width=*/100e-9,
                                  /*fall=*/10e-9, /*period=*/1e-6);
    sys.add<analog::Resistor>(sys, "RL", n, analog::kGround, 1e3);
    analog::TransientSolver solver(sys);
    solver.solveDc();
    // Pulse k starts at 1 us + k * 1 us; sample each plateau and each gap.
    for (int k = 0; k < 3; ++k) {
        solver.advanceTo(1e-6 + k * 1e-6 + 60e-9);
        EXPECT_NEAR(sys.voltage(n), 1.0, 1e-3) << "pulse " << k;
        solver.advanceTo(1e-6 + k * 1e-6 + 0.5e-6);
        EXPECT_NEAR(sys.voltage(n), 0.0, 1e-3) << "gap " << k;
    }
}

TEST(TimeFormat, NegativeTimes)
{
    EXPECT_EQ(formatTime(-kNanosecond), "-1 ns");
    EXPECT_EQ(formatTime(-1500 * kPicosecond), "-1.500 ns");
}

TEST(AnalogSystemTest, GroundAliases)
{
    analog::AnalogSystem sys;
    EXPECT_EQ(sys.node("0"), analog::kGround);
    EXPECT_EQ(sys.node("gnd"), analog::kGround);
    EXPECT_EQ(sys.node("GND"), analog::kGround);
    const auto a = sys.node("a");
    EXPECT_EQ(sys.node("a"), a); // idempotent lookup
    EXPECT_EQ(sys.nodeName(a), "a");
    EXPECT_EQ(sys.findComponent("nope"), nullptr);
}

} // namespace
} // namespace gfi
