// Tests for fault-list generation and campaign statistics.

#include "core/faultlist.hpp"
#include "core/stats.hpp"
#include "duts/digital_dut.hpp"

#include <gtest/gtest.h>

namespace gfi::fault {
namespace {

TEST(FaultList, AllBitFlipsCoversEveryBitAndTime)
{
    duts::DigitalDutTestbench tb;
    const std::vector<SimTime> times{kMicrosecond, 2 * kMicrosecond};
    const auto faults = allBitFlips(tb, times);
    const int bits = tb.sim().digital().instrumentation().totalBits();
    EXPECT_EQ(faults.size(), static_cast<std::size_t>(bits) * times.size());
    for (const auto& f : faults) {
        EXPECT_TRUE(std::holds_alternative<BitFlipFault>(f));
    }
}

TEST(FaultList, RandomBitFlipsDeterministicUnderSeed)
{
    duts::DigitalDutTestbench tb;
    Rng rngA(123);
    Rng rngB(123);
    const auto a = randomBitFlips(tb, 50, {0, 4 * kMicrosecond}, rngA);
    const auto b = randomBitFlips(tb, 50, {0, 4 * kMicrosecond}, rngB);
    ASSERT_EQ(a.size(), 50u);
    ASSERT_EQ(b.size(), 50u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(describe(a[i]), describe(b[i]));
    }
}

TEST(FaultList, RandomBitFlipsStayInWindow)
{
    duts::DigitalDutTestbench tb;
    Rng rng(7);
    const auto faults = randomBitFlips(tb, 200, {kMicrosecond, 3 * kMicrosecond}, rng);
    for (const auto& f : faults) {
        const SimTime t = injectionTime(f);
        EXPECT_GE(t, kMicrosecond);
        EXPECT_LE(t, 3 * kMicrosecond);
    }
}

TEST(FaultList, AdjacentDoubleFlips)
{
    duts::DigitalDutTestbench tb;
    const auto faults = adjacentDoubleFlips(tb, {kMicrosecond});
    EXPECT_FALSE(faults.empty());
    for (const auto& f : faults) {
        ASSERT_TRUE(std::holds_alternative<DoubleBitFlipFault>(f));
        const auto& d = std::get<DoubleBitFlipFault>(f);
        EXPECT_EQ(d.bitB, d.bitA + 1);
    }
}

TEST(FaultList, SetPulseCrossProduct)
{
    duts::DigitalDutTestbench tb;
    const auto faults =
        allSetPulses(tb, {kMicrosecond, 2 * kMicrosecond}, {kNanosecond, 10 * kNanosecond});
    // 2 saboteurs x 2 times x 2 widths.
    EXPECT_EQ(faults.size(), 8u);
}

TEST(FaultList, CurrentPulseSweep)
{
    auto shape = std::make_shared<TrapezoidPulse>(1e-3, 1e-12, 1e-12, 3e-12);
    const auto faults = currentPulseSweep({"sab/a", "sab/b"}, {1e-6, 2e-6}, {shape});
    EXPECT_EQ(faults.size(), 4u);
    for (const auto& f : faults) {
        EXPECT_TRUE(std::holds_alternative<CurrentPulseFault>(f));
    }
}

TEST(FaultList, RandomCurrentPulsesRespectRanges)
{
    Rng rng(99);
    const auto faults = randomCurrentPulses({"sab/x"}, 100, {1e-6, 2e-6}, {1e-3, 10e-3},
                                            {100e-12, 1e-9}, rng);
    ASSERT_EQ(faults.size(), 100u);
    for (const auto& f : faults) {
        const auto& cp = std::get<CurrentPulseFault>(f);
        EXPECT_GE(cp.timeSeconds, 1e-6);
        EXPECT_LE(cp.timeSeconds, 2e-6);
        const auto* trap = dynamic_cast<const TrapezoidPulse*>(cp.shape.get());
        ASSERT_NE(trap, nullptr);
        EXPECT_GE(trap->amplitude(), 1e-3 * 0.999);
        EXPECT_LE(trap->amplitude(), 10e-3 * 1.001);
        EXPECT_GE(trap->width(), 100e-12 * 0.999);
        EXPECT_LE(trap->width(), 1e-9 * 1.001);
    }
}

TEST(FaultList, DedupeDropsRepeatsKeepsOrder)
{
    const BitFlipFault flip{"dut/out_reg", 2, kMicrosecond};
    const DigitalPulseFault pulse{"sab/a", kMicrosecond, kNanosecond};
    const std::vector<FaultSpec> faults{
        FaultSpec{},       // golden
        FaultSpec{flip},   // kept
        FaultSpec{pulse},  // kept
        FaultSpec{flip},   // duplicate of [1]
        FaultSpec{},       // duplicate golden
        FaultSpec{BitFlipFault{"dut/out_reg", 3, kMicrosecond}}, // distinct bit
        FaultSpec{pulse},  // duplicate of [2]
    };
    const auto unique = dedupe(faults);
    ASSERT_EQ(unique.size(), 4u);
    EXPECT_TRUE(std::holds_alternative<std::monostate>(unique[0]));
    EXPECT_EQ(describe(unique[1]), describe(FaultSpec{flip}));
    EXPECT_EQ(describe(unique[2]), describe(FaultSpec{pulse}));
    EXPECT_EQ(std::get<BitFlipFault>(unique[3]).bit, 3);

    // Already-unique lists pass through untouched; empty stays empty.
    EXPECT_EQ(dedupe(unique).size(), 4u);
    EXPECT_TRUE(dedupe({}).empty());
}

TEST(FaultList, DoubleFlipArmsAndRuns)
{
    campaign::CampaignRunner runner(
        [] { return std::make_unique<duts::DigitalDutTestbench>(); });
    DoubleBitFlipFault f{"dut/out_reg", 2, 3, 2 * kMicrosecond + 7 * kNanosecond};
    const auto r = runner.runOne(FaultSpec{f});
    EXPECT_NE(r.outcome, campaign::Outcome::Silent);
}

} // namespace
} // namespace gfi::fault

namespace gfi::campaign {
namespace {

TEST(Stats, WilsonIntervalBasics)
{
    const auto p = wilsonInterval(50, 100);
    EXPECT_NEAR(p.estimate, 0.5, 1e-12);
    EXPECT_LT(p.low, 0.5);
    EXPECT_GT(p.high, 0.5);
    EXPECT_NEAR(p.high - p.low, 2.0 * 1.96 * 0.05, 0.01); // ~ +/- 9.8 %
}

TEST(Stats, WilsonBehavedAtExtremes)
{
    const auto zero = wilsonInterval(0, 40);
    EXPECT_DOUBLE_EQ(zero.estimate, 0.0);
    EXPECT_DOUBLE_EQ(zero.low, 0.0);
    EXPECT_GT(zero.high, 0.0); // "we saw nothing" still has an upper bound
    EXPECT_LT(zero.high, 0.15);

    const auto all = wilsonInterval(40, 40);
    EXPECT_DOUBLE_EQ(all.high, 1.0);
    EXPECT_LT(all.low, 1.0);
    EXPECT_GT(all.low, 0.85);

    const auto empty = wilsonInterval(0, 0);
    EXPECT_EQ(empty.trials, 0);
}

TEST(Stats, RequiredSamples)
{
    // Classic result: ~9604 samples for +/- 1 % at 95 %.
    EXPECT_NEAR(requiredSamples(0.01), 9604, 1);
    EXPECT_NEAR(requiredSamples(0.05), 385, 1);
}

TEST(Stats, OutcomeRatesOverReport)
{
    CampaignReport report;
    auto push = [&](Outcome o) {
        RunResult r;
        r.outcome = o;
        report.runs.push_back(r);
    };
    for (int i = 0; i < 6; ++i) {
        push(Outcome::Silent);
    }
    for (int i = 0; i < 3; ++i) {
        push(Outcome::TransientError);
    }
    push(Outcome::Failure);

    const auto rates = outcomeRates(report);
    EXPECT_NEAR(rates.silent.estimate, 0.6, 1e-12);
    EXPECT_NEAR(rates.transient.estimate, 0.3, 1e-12);
    EXPECT_NEAR(rates.failure.estimate, 0.1, 1e-12);
    EXPECT_NEAR(rates.effective.estimate, 0.4, 1e-12);

    const std::string table = ratesTable(rates);
    EXPECT_NE(table.find("any effect"), std::string::npos);
    EXPECT_NE(table.find("95 % interval"), std::string::npos);
}

} // namespace
} // namespace gfi::campaign
