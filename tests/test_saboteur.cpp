// Unit tests for the instrumentation blocks: the analog current saboteur
// (the paper's GenCur, Figure 4) and the digital interconnect saboteur.

#include "analog/passive.hpp"
#include "analog/solver.hpp"
#include "analog/sources.hpp"
#include "core/fault.hpp"
#include "core/saboteur.hpp"

#include <gtest/gtest.h>

namespace gfi::fault {
namespace {

using namespace analog;

TEST(CurrentSaboteur, InjectsChargeIntoCapacitor)
{
    // A pulse into an isolated capacitor deposits exactly Q/C volts.
    AnalogSystem sys;
    const NodeId n = sys.node("n");
    sys.add<Capacitor>(sys, "C1", n, kGround, 1e-9);
    sys.add<Resistor>(sys, "Rleak", n, kGround, 1e9); // slow leak for DC
    auto& sab = sys.add<CurrentSaboteur>(sys, "sab", n);

    TrapezoidPulse pulse(10e-3, 100e-12, 300e-12, 500e-12);
    sab.arm(1e-6, pulse);

    TransientSolver solver(sys);
    solver.solveDc();
    EXPECT_NEAR(sys.voltage(n), 0.0, 1e-6);
    solver.advanceTo(2e-6);
    // Q = 3 pC into 1 nF -> 3 mV (leak negligible at this time scale).
    EXPECT_NEAR(sys.voltage(n), 3e-3, 3e-5);
}

TEST(CurrentSaboteur, DoubleExpDepositsItsCharge)
{
    AnalogSystem sys;
    const NodeId n = sys.node("n");
    sys.add<Capacitor>(sys, "C1", n, kGround, 1e-9);
    sys.add<Resistor>(sys, "Rleak", n, kGround, 1e9);
    auto& sab = sys.add<CurrentSaboteur>(sys, "sab", n);

    DoubleExpPulse pulse(10e-3, 50e-12, 500e-12);
    sab.arm(1e-6, pulse);

    TransientSolver solver(sys);
    solver.solveDc();
    solver.advanceTo(2e-6);
    EXPECT_NEAR(sys.voltage(n), pulse.charge() / 1e-9, pulse.charge() / 1e-9 * 0.02);
}

TEST(CurrentSaboteur, DisarmedInjectsNothing)
{
    AnalogSystem sys;
    const NodeId n = sys.node("n");
    sys.add<Capacitor>(sys, "C1", n, kGround, 1e-9);
    sys.add<Resistor>(sys, "Rleak", n, kGround, 1e6);
    auto& sab = sys.add<CurrentSaboteur>(sys, "sab", n);
    sab.arm(1e-6, TrapezoidPulse(10e-3, 100e-12, 300e-12, 500e-12));
    sab.disarm();
    EXPECT_FALSE(sab.armed());

    TransientSolver solver(sys);
    solver.solveDc();
    solver.advanceTo(2e-6);
    EXPECT_NEAR(sys.voltage(n), 0.0, 1e-6);
}

TEST(CurrentSaboteur, SuperposesWithNormalCurrent)
{
    // Paper semantics: the pulse is superposed on the node's normal current.
    // A resistor divider holds 2.5 V; during a long flat pulse the node sits
    // at 2.5 V + I * (R1 || R2).
    AnalogSystem sys;
    const NodeId in = sys.node("in");
    const NodeId n = sys.node("n");
    sys.add<VoltageSource>(sys, "V1", in, kGround, 5.0);
    sys.add<Resistor>(sys, "R1", in, n, 1e3);
    sys.add<Resistor>(sys, "R2", n, kGround, 1e3);
    auto& sab = sys.add<CurrentSaboteur>(sys, "sab", n);
    sab.arm(1e-6, TrapezoidPulse(1e-3, 1e-9, 1e-9, 102e-9));

    TransientSolver solver(sys);
    solver.solveDc();
    solver.advanceTo(1e-6 + 50e-9); // mid-plateau
    EXPECT_NEAR(sys.voltage(n), 2.5 + 1e-3 * 500.0, 5e-3);
    solver.advanceTo(2e-6); // pulse over
    EXPECT_NEAR(sys.voltage(n), 2.5, 5e-3);
}

TEST(DigitalSaboteur, TransparentByDefault)
{
    digital::Circuit c;
    auto& in = c.logicSignal("in", digital::Logic::Zero);
    auto& out = c.logicSignal("out", digital::Logic::U);
    c.add<DigitalSaboteur>(c, "sab", in, out);
    c.runUntil(kNanosecond);
    EXPECT_EQ(out.value(), digital::Logic::Zero);
    c.scheduler().scheduleAction(2 * kNanosecond,
                                 [&in] { in.forceValue(digital::Logic::One); });
    c.runUntil(3 * kNanosecond);
    EXPECT_EQ(out.value(), digital::Logic::One);
}

TEST(DigitalSaboteur, InvertPulseWindow)
{
    digital::Circuit c;
    auto& in = c.logicSignal("in", digital::Logic::Zero);
    auto& out = c.logicSignal("out", digital::Logic::U);
    auto& sab = c.add<DigitalSaboteur>(c, "sab", in, out);
    sab.injectPulse(10 * kNanosecond, 5 * kNanosecond);
    c.runUntil(9 * kNanosecond);
    EXPECT_EQ(out.value(), digital::Logic::Zero);
    c.runUntil(12 * kNanosecond);
    EXPECT_EQ(out.value(), digital::Logic::One); // inverted
    c.runUntil(20 * kNanosecond);
    EXPECT_EQ(out.value(), digital::Logic::Zero); // transparent again
}

TEST(DigitalSaboteur, StuckAtWindowAndPermanent)
{
    digital::Circuit c;
    auto& in = c.logicSignal("in", digital::Logic::One);
    auto& out = c.logicSignal("out", digital::Logic::U);
    auto& sab = c.add<DigitalSaboteur>(c, "sab", in, out);
    sab.injectStuckAt(10 * kNanosecond, digital::Logic::Zero, 10 * kNanosecond);
    c.runUntil(15 * kNanosecond);
    EXPECT_EQ(out.value(), digital::Logic::Zero);
    c.runUntil(25 * kNanosecond);
    EXPECT_EQ(out.value(), digital::Logic::One);

    sab.injectStuckAt(30 * kNanosecond, digital::Logic::Zero, 0); // permanent
    c.runUntil(100 * kNanosecond);
    EXPECT_EQ(out.value(), digital::Logic::Zero);
    EXPECT_EQ(sab.mode(), DigitalSaboteur::Mode::Stuck);
}

TEST(DigitalSaboteur, InvertTracksInputDuringWindow)
{
    digital::Circuit c;
    auto& in = c.logicSignal("in", digital::Logic::Zero);
    auto& out = c.logicSignal("out", digital::Logic::U);
    auto& sab = c.add<DigitalSaboteur>(c, "sab", in, out);
    sab.setMode(DigitalSaboteur::Mode::Invert);
    c.runUntil(kNanosecond);
    EXPECT_EQ(out.value(), digital::Logic::One);
    c.scheduler().scheduleAction(2 * kNanosecond,
                                 [&in] { in.forceValue(digital::Logic::One); });
    c.runUntil(3 * kNanosecond);
    EXPECT_EQ(out.value(), digital::Logic::Zero);
}

TEST(FaultSpec, DescribeAllVariants)
{
    EXPECT_EQ(describe(FaultSpec{}), "golden (no fault)");
    EXPECT_NE(describe(FaultSpec{BitFlipFault{"reg", 3, kMicrosecond}}).find("reg[3]"),
              std::string::npos);
    EXPECT_NE(describe(FaultSpec{StateWriteFault{"reg", 7, 0}}).find("reg=7"),
              std::string::npos);
    EXPECT_NE(describe(FaultSpec{FsmTransitionFault{"fsm", 2, 0}}).find("S2"),
              std::string::npos);
    EXPECT_NE(describe(FaultSpec{DigitalPulseFault{"sab", 0, kNanosecond}}).find("set-pulse"),
              std::string::npos);
    EXPECT_NE(describe(FaultSpec{StuckAtFault{"sab", digital::Logic::One, 0, 0}})
                  .find("stuck-at-1"),
              std::string::npos);
    CurrentPulseFault cp{"sab", 1e-6, std::make_shared<TrapezoidPulse>(1e-3, 1e-12, 1e-12,
                                                                       3e-12)};
    EXPECT_NE(describe(FaultSpec{cp}).find("current-pulse"), std::string::npos);
    EXPECT_NE(describe(FaultSpec{ParametricFault{"r1", 1.5, 0}}).find("x1.5"),
              std::string::npos);
}

TEST(FaultSpec, InjectionTimes)
{
    EXPECT_EQ(injectionTime(FaultSpec{}), 0);
    EXPECT_EQ(injectionTime(FaultSpec{BitFlipFault{"r", 0, 42}}), 42);
    CurrentPulseFault cp{"sab", 1e-6, nullptr};
    EXPECT_EQ(injectionTime(FaultSpec{cp}), kMicrosecond);
    EXPECT_TRUE(isGolden(FaultSpec{}));
    EXPECT_FALSE(isGolden(FaultSpec{BitFlipFault{}}));
}

} // namespace
} // namespace gfi::fault
