// Tests for the external-netlist ingestion subsystem (src/io): the two
// parser grammars, digest canonicalization, seeded pattern generation, the
// instrumented elaboration (differential against a hand-built DUT and
// between backends/worker widths), and the content-addressed golden store
// (byte-identical replay, corruption hard errors, the PRE009 stale-cache
// gate).

#include "core/report.hpp"
#include "digital/gates.hpp"
#include "digital/stimulus.hpp"
#include "core/saboteur.hpp"
#include "io/golden_store.hpp"
#include "io/ingest.hpp"
#include "io/netlist.hpp"
#include "io/sha256.hpp"
#include "lint/preflight.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace gfi::io {
namespace {

const char* kC17Bench = R"(# c17
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
)";

const char* kC17Verilog = R"(// c17, structural verilog
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand g10 (N10, N1, N3);
  nand g11 (N11, N3, N6);
  nand g16 (N16, N2, N11);
  nand g19 (N19, N11, N7);
  nand g22 (N22, N10, N16);
  nand g23 (N23, N16, N19);
endmodule
)";

/// The classification text two campaigns must agree on byte-for-byte:
/// per-run fault description, outcome and divergence metrics. Timing
/// diagnostics and backend provenance (batch lane) are deliberately
/// excluded — those legitimately differ between kernels.
std::string classificationText(const campaign::CampaignReport& report)
{
    std::string out;
    for (const campaign::RunResult& r : report.runs) {
        out += fault::describe(r.fault);
        out += '\t';
        out += campaign::toString(r.outcome);
        out += '\t';
        out += std::to_string(r.firstOutputError);
        out += '\t';
        out += std::to_string(r.totalOutputErrorTime);
        for (const std::string& s : r.erredSignals) {
            out += '\t';
            out += s;
        }
        out += '\n';
    }
    return out;
}

std::string freshDir(const std::string& tag)
{
    const std::string path = ::testing::TempDir() + "gfi_io_" + tag;
    std::filesystem::remove_all(path);
    return path;
}

// --- SHA-256 ---------------------------------------------------------------

TEST(Sha256, Fips180Vectors)
{
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
    // Multi-block: one million 'a' (streamed, exercises buffering).
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) {
        h.update(chunk);
    }
    EXPECT_EQ(h.finishHex(),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, LooksLike)
{
    EXPECT_TRUE(looksLikeSha256(sha256Hex("x")));
    EXPECT_FALSE(looksLikeSha256("deadbeef"));
    EXPECT_FALSE(looksLikeSha256(std::string(64, 'g')));
}

// --- parsing ---------------------------------------------------------------

TEST(NetlistParse, BenchC17)
{
    const NetlistDesc d = parseNetlist(kC17Bench, "c17.bench");
    EXPECT_EQ(d.name, "c17");
    EXPECT_EQ(d.inputs, (std::vector<std::string>{"N1", "N2", "N3", "N6", "N7"}));
    EXPECT_EQ(d.outputs, (std::vector<std::string>{"N22", "N23"}));
    ASSERT_EQ(d.gates.size(), 6u);
    EXPECT_EQ(d.gates[0].kind, digital::GateKind::Nand);
    EXPECT_EQ(d.gates[0].output, "N10");
    EXPECT_EQ(d.nets().size(), 11u); // 5 inputs + 6 gate outputs
}

TEST(NetlistParse, VerilogMatchesBenchDigest)
{
    const NetlistDesc bench = parseNetlist(kC17Bench, "c17.bench");
    const NetlistDesc verilog = parseNetlist(kC17Verilog, "c17.v");
    EXPECT_EQ(verilog.name, "c17");
    EXPECT_EQ(bench.canonicalText(), verilog.canonicalText());
    EXPECT_EQ(bench.digest(), verilog.digest());
}

TEST(NetlistParse, AutoDetectsFormat)
{
    EXPECT_EQ(parseNetlist(kC17Verilog, "x").name, "c17"); // "module" => verilog
    EXPECT_EQ(parseNetlist(kC17Bench, "c17.bench").gates.size(), 6u);
}

TEST(NetlistParse, DigestInvariances)
{
    const std::string base = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
    const std::string digest = parseNetlist(base, "t").digest();
    // Comments, whitespace, keyword case: no digest change.
    EXPECT_EQ(parseNetlist("# hi\n INPUT( a )\nINPUT(b)\nOUTPUT(y)\n y  =  and ( a , b )\n", "t")
                  .digest(),
              digest);
    // Commutative input order: no digest change.
    EXPECT_EQ(parseNetlist("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(b, a)\n", "t").digest(),
              digest);
    // Renamed net: different design, different digest.
    EXPECT_NE(parseNetlist("INPUT(a)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, c)\n", "t").digest(),
              digest);
    // Input declaration order is semantic (stimulus bit order): different.
    EXPECT_NE(parseNetlist("INPUT(b)\nINPUT(a)\nOUTPUT(y)\ny = AND(a, b)\n", "t").digest(),
              digest);
}

TEST(NetlistParse, GateOrderDoesNotChangeDigest)
{
    const std::string forward =
        "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nm = NAND(a, b)\nz = NOT(m)\n";
    const std::string reversed =
        "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NOT(m)\nm = NAND(a, b)\n";
    EXPECT_EQ(parseNetlist(forward, "t").digest(), parseNetlist(reversed, "t").digest());
}

TEST(NetlistParse, Errors)
{
    // Unknown gate keyword.
    EXPECT_THROW((void)parseNetlist("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", "t"),
                 NetlistParseError);
    // Multiply-driven net.
    EXPECT_THROW(
        (void)parseNetlist("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n", "t"),
        NetlistParseError);
    // Undriven read.
    EXPECT_THROW((void)parseNetlist("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n", "t"),
                 NetlistParseError);
    // Self-loop.
    EXPECT_THROW((void)parseNetlist("INPUT(a)\nOUTPUT(y)\ny = AND(a, y)\n", "t"),
                 NetlistParseError);
    // Arity: NOT takes exactly one input.
    EXPECT_THROW((void)parseNetlist("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n", "t"),
                 NetlistParseError);
    // Undriven primary output.
    EXPECT_THROW((void)parseNetlist("INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = NOT(a)\n", "t"),
                 NetlistParseError);
    // Error messages carry source and line.
    try {
        (void)parseNetlist("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", "bad.bench");
        FAIL() << "expected NetlistParseError";
    } catch (const NetlistParseError& e) {
        EXPECT_EQ(e.line(), 3);
        EXPECT_NE(std::string(e.what()).find("bad.bench:3"), std::string::npos);
    }
}

// --- patterns and fault lists ----------------------------------------------

TEST(Patterns, DeterministicAndSeedSensitive)
{
    const NetlistDesc d = parseNetlist(kC17Bench, "c17.bench");
    const PatternSet a = generatePatterns(d, 32, 7, 10 * kNanosecond);
    const PatternSet b = generatePatterns(d, 32, 7, 10 * kNanosecond);
    const PatternSet c = generatePatterns(d, 32, 8, 10 * kNanosecond);
    ASSERT_EQ(a.rows.size(), 32u);
    ASSERT_EQ(a.rows[0].size(), d.inputs.size());
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_NE(a.digest(), c.digest());
    EXPECT_EQ(a.rows, b.rows);
}

TEST(Patterns, WorkloadDigestsCoverAllThreeAxes)
{
    NetlistDesc d = parseNetlist(kC17Bench, "c17.bench");
    IngestConfig cfg;
    cfg.patternCount = 8;
    const IngestWorkload base = makeWorkload(d, cfg);
    EXPECT_EQ(base.faults.size(), 2 * base.netlist->nets().size()); // SA0+SA1 per net

    IngestConfig seeded = cfg;
    seeded.patternSeed = 99;
    EXPECT_NE(makeWorkload(d, seeded).stimulusDigest, base.stimulusDigest);
    EXPECT_EQ(makeWorkload(d, seeded).netlistDigest, base.netlistDigest);

    FaultListOptions withSet;
    withSet.setPulses = true;
    EXPECT_NE(makeWorkload(d, cfg, withSet).faultDigest, base.faultDigest);
}

// --- elaboration: differential and cross-backend identity -------------------

/// Hand-built mirror of the 3-gate "mini" netlist below, written in the
/// hand-authored DUT idiom (explicit signals, gates, saboteurs, stimulus) —
/// the reference the ingested elaboration must match byte for byte.
class MiniHandBuilt : public fault::Testbench {
public:
    explicit MiniHandBuilt(const PatternSet& patterns)
    {
        using digital::Logic;
        auto& dig = sim().digital();
        // Same canonical net order as NetlistDesc::nets(): inputs a, b, c,
        // then gate outputs sorted: n1, y, z.
        const std::vector<std::string> nets{"a", "b", "c", "n1", "y", "z"};
        std::map<std::string, digital::LogicSignal*> driven;
        std::map<std::string, digital::LogicSignal*> faulty;
        for (const std::string& n : nets) {
            driven[n] = &dig.logicSignal("mini/" + n, Logic::Zero);
            faulty[n] = &dig.logicSignal("mini/" + n + "~f", Logic::Zero);
        }
        for (const std::string& n : nets) {
            addDigitalSaboteur(
                dig.add<fault::DigitalSaboteur>(dig, "sab/" + n, *driven[n], *faulty[n]));
        }
        dig.add<digital::Gate>(dig, "mini/n1", digital::GateKind::Nand,
                               std::vector<digital::LogicSignal*>{faulty["a"], faulty["b"]},
                               *driven["n1"]);
        dig.add<digital::Gate>(dig, "mini/y", digital::GateKind::Xor,
                               std::vector<digital::LogicSignal*>{faulty["c"], faulty["n1"]},
                               *driven["y"]);
        dig.add<digital::Gate>(dig, "mini/z", digital::GateKind::Not,
                               std::vector<digital::LogicSignal*>{faulty["n1"]},
                               *driven["z"]);
        auto& stim = dig.add<digital::StimulusSchedule>(dig, "mini/stimuli");
        const std::vector<std::string> pis{"a", "b", "c"};
        std::vector<bool> prev(pis.size(), false);
        for (std::size_t k = 0; k < patterns.rows.size(); ++k) {
            for (std::size_t i = 0; i < pis.size(); ++i) {
                if (patterns.rows[k][i] == prev[i]) {
                    continue;
                }
                stim.at(static_cast<SimTime>(k) * patterns.period, *driven[pis[i]],
                        patterns.rows[k][i] ? Logic::One : Logic::Zero);
                prev[i] = patterns.rows[k][i];
            }
        }
        for (const std::string& pi : pis) {
            dig.noteExternalDriver(*driven[pi]);
        }
        observeDigital("mini/y~f");
        observeDigital("mini/z~f");
        setDuration(static_cast<SimTime>(patterns.rows.size()) * patterns.period);
    }
};

IngestWorkload miniWorkload()
{
    NetlistDesc d = parseNetlist(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n"
        "n1 = NAND(a, b)\ny = XOR(c, n1)\nz = NOT(n1)\n",
        "mini.bench");
    IngestConfig cfg;
    cfg.patternCount = 24;
    return makeWorkload(std::move(d), cfg);
}

TEST(IngestDifferential, MatchesHandBuiltDut)
{
    const IngestWorkload w = miniWorkload();

    campaign::CampaignRunner ingested(w.factory());
    ingested.setRecordTiming(false);
    const auto ingestedReport = ingested.run(w.faults);

    auto patterns = w.patterns;
    campaign::CampaignRunner hand(
        [patterns] { return std::make_unique<MiniHandBuilt>(*patterns); });
    hand.setRecordTiming(false);
    const auto handReport = hand.run(w.faults);

    ASSERT_EQ(ingestedReport.runs.size(), handReport.runs.size());
    EXPECT_EQ(classificationText(ingestedReport), classificationText(handReport));
    // Identical construction => identical reports down to the last byte.
    EXPECT_EQ(campaign::reportToJson(ingestedReport), campaign::reportToJson(handReport));
}

TEST(IngestDifferential, BackendsAndWorkerWidthsAgree)
{
    const IngestWorkload w = miniWorkload();

    auto runWith = [&](bool batch, unsigned workers, bool collapse) {
        campaign::CampaignRunner runner(w.factory());
        runner.setRecordTiming(false);
        runner.setBatchBackend(batch);
        runner.setWorkers(workers);
        runner.setFaultCollapsing(collapse);
        return runner.run(w.faults);
    };

    const std::string reference = classificationText(runWith(false, 1, false));
    EXPECT_EQ(classificationText(runWith(false, 8, false)), reference)
        << "8-worker event-driven diverged from serial";
    EXPECT_EQ(classificationText(runWith(true, 1, false)), reference)
        << "bit-parallel batch diverged from event-driven";
    EXPECT_EQ(classificationText(runWith(true, 8, false)), reference)
        << "8-worker batch diverged";
    EXPECT_EQ(classificationText(runWith(false, 1, true)), reference)
        << "fault collapsing changed classifications";
}

TEST(Ingest, PeriodTooShortForDepthThrows)
{
    NetlistDesc d = parseNetlist(kC17Bench, "c17.bench");
    IngestConfig cfg;
    cfg.patternCount = 4;
    cfg.patternPeriod = 2 * digital::kDefaultGateDelay; // depth 3 cannot settle
    EXPECT_THROW((void)makeWorkload(std::move(d), cfg).factory()(), std::invalid_argument);
}

// --- golden store ----------------------------------------------------------

TEST(GoldenStoreTest, MissThenHitReplaysByteIdentically)
{
    const std::string root = freshDir("store_roundtrip");
    GoldenStore store(root);
    const IngestWorkload w = miniWorkload();

    campaign::CampaignRunner runner(w.factory());
    const CachedCampaign cold = runCampaignCached(runner, w, store);
    EXPECT_FALSE(cold.hit);
    EXPECT_TRUE(store.contains(CacheKey::of(w)));

    // The warm pass must not simulate: give it a runner whose factory throws.
    campaign::CampaignRunner poisoned([]() -> std::unique_ptr<fault::Testbench> {
        throw std::logic_error("store hit must not build testbenches");
    });
    const CachedCampaign warm = runCampaignCached(poisoned, w, store);
    EXPECT_TRUE(warm.hit);
    EXPECT_EQ(warm.key, cold.key);
    EXPECT_EQ(campaign::reportToJson(warm.report), campaign::reportToJson(cold.report));
    EXPECT_EQ(renderAnsText(w, warm.report), renderAnsText(w, cold.report));
}

TEST(GoldenStoreTest, LookupMissIsNullopt)
{
    GoldenStore store(freshDir("store_miss"));
    const CacheKey key{sha256Hex("n"), sha256Hex("s"), sha256Hex("f")};
    EXPECT_FALSE(store.contains(key));
    EXPECT_FALSE(store.lookup(key).has_value());
}

TEST(GoldenStoreTest, CorruptedVerdictsAreAHardError)
{
    const std::string root = freshDir("store_corrupt");
    GoldenStore store(root);
    const IngestWorkload w = miniWorkload();
    campaign::CampaignRunner runner(w.factory());
    const CachedCampaign cold = runCampaignCached(runner, w, store);

    // Flip one byte of the stored verdicts; the recorded SHA-256 must now
    // refuse the replay outright instead of returning doctored results.
    const std::filesystem::path verdicts =
        std::filesystem::path(store.entryDir(cold.key)) / "verdicts.jsonl";
    std::string text;
    {
        std::ifstream in(verdicts, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }
    ASSERT_FALSE(text.empty());
    const std::size_t at = text.find("stuck-at-0");
    ASSERT_NE(at, std::string::npos);
    text[at] = 'X';
    {
        std::ofstream out(verdicts, std::ios::binary | std::ios::trunc);
        out << text;
    }
    EXPECT_THROW((void)store.lookup(CacheKey::of(w)), GoldenStoreError);
}

TEST(GoldenStoreTest, NamePointerAndStaleCachePre009)
{
    const std::string root = freshDir("store_stale");
    GoldenStore store(root);
    const IngestWorkload w = miniWorkload();
    campaign::CampaignRunner runner(w.factory());
    (void)runCampaignCached(runner, w, store);

    // Same name, same digest: resolves to the verified entry.
    const auto entry = store.lookupByName("mini", w.netlistDigest);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->key.netlistDigest, w.netlistDigest);
    EXPECT_EQ(entry->verdicts.size(), w.faults.size());

    // Same name, edited design: the stale-cache gate must fire with PRE009
    // and both digests in the diagnostic.
    const std::string editedDigest = sha256Hex("a different canonical netlist");
    try {
        (void)store.lookupByName("mini", editedDigest);
        FAIL() << "expected lint::PreflightError";
    } catch (const lint::PreflightError& e) {
        EXPECT_TRUE(e.report().hasRule("PRE009"));
        const std::string what = e.what();
        EXPECT_NE(what.find(w.netlistDigest), std::string::npos)
            << "diagnostic must name the stored digest";
        EXPECT_NE(what.find(editedDigest), std::string::npos)
            << "diagnostic must name the loaded circuit's digest";
    }
}

TEST(Preflight, StoredDigestRule)
{
    const std::string d = sha256Hex("same");
    EXPECT_TRUE(lint::preflightStoredDigest("store:x", d, d).clean());
    const lint::Report stale = lint::preflightStoredDigest("store:x", sha256Hex("a"),
                                                           sha256Hex("b"));
    EXPECT_TRUE(stale.hasRule("PRE009"));
    EXPECT_EQ(stale.count(lint::Severity::Error), 1u);
}

TEST(ReportFromEntries, RejectsMismatchedFaultList)
{
    const IngestWorkload w = miniWorkload();
    campaign::CampaignRunner runner(w.factory());
    runner.setRecordTiming(false);
    const auto report = runner.run(w.faults);

    std::vector<campaign::JournalEntry> entries;
    for (std::size_t i = 0; i < report.runs.size(); ++i) {
        const auto parsed = campaign::CampaignJournal::parseLine(
            campaign::CampaignJournal::entryToJson(i, report.runs[i]));
        ASSERT_TRUE(parsed.has_value());
        entries.push_back(*parsed);
    }
    // Round trip reproduces the live report byte for byte.
    const auto rebuilt = campaign::reportFromEntries(w.faults, entries);
    EXPECT_EQ(campaign::reportToJson(rebuilt), campaign::reportToJson(report));

    // A different fault list must be rejected, not silently replayed.
    auto wrongFaults = w.faults;
    std::swap(wrongFaults.front(), wrongFaults.back());
    EXPECT_THROW((void)campaign::reportFromEntries(wrongFaults, entries),
                 std::runtime_error);
    // A truncated entry set must be rejected too.
    entries.pop_back();
    EXPECT_THROW((void)campaign::reportFromEntries(w.faults, entries), std::runtime_error);
}

} // namespace
} // namespace gfi::io
