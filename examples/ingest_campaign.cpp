// Bring-your-own-circuit campaign CLI: parses an external netlist (ISCAS-85
// ".bench" or the structural-Verilog subset), generates a seeded stimulus
// schedule, enumerates the exhaustive stuck-at fault list over every net and
// runs the full campaign through the event-driven kernel — optionally
// cross-checked against the bit-parallel batch backend, memoized in a
// content-addressed golden store, and verified against a checked-in SHA-256
// answer digest (the judge contract of the bundled testcases/).
//
// Exit codes: 0 ok; 1 usage/parse/runtime error; 2 event-driven and batch
// verdicts diverge; 3 verdict digest does not match --verify.

#include "core/cost.hpp"
#include "core/report.hpp"
#include "io/golden_store.hpp"
#include "io/ingest.hpp"
#include "io/netlist.hpp"
#include "io/sha256.hpp"
#include "lint/preflight.hpp"
#include "obs/telemetry.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

using namespace gfi;

namespace {

int usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s <netlist.bench|netlist.v> [options]\n"
                 "  --patterns N      stimulus patterns to apply (default 64)\n"
                 "  --seed N          pattern generator seed (default 42)\n"
                 "  --workers N       campaign worker threads (default 1)\n"
                 "  --batch           also run the bit-parallel batch backend and\n"
                 "                    require verdicts identical to event-driven\n"
                 "  --collapse        enable static fault collapsing\n"
                 "  --set             add one SET pulse per net to the fault list\n"
                 "  --store DIR       golden store root (memoize/replay verdicts)\n"
                 "  --csv FILE        write the per-run CSV report\n"
                 "  --json FILE       write the JSON report\n"
                 "  --ans FILE        write the verdict (.ans) text\n"
                 "  --write-sha FILE  write the verdict SHA-256 (sha256sum format)\n"
                 "  --verify FILE     check the verdict SHA-256 against FILE\n"
                 "  --progress        stream NDJSON progress heartbeats to stderr\n"
                 "  --metrics FILE    write the campaign metrics dump (text or .json)\n"
                 "  --trace FILE      write the Chrome-trace span timeline\n"
                 "  --forensics DIR   dump flight-recorder forensics for abnormal runs\n"
                 "  --max-waves N     per-run digital wave budget (0 = unlimited)\n"
                 "  --cost            print the per-fault cost attribution table and\n"
                 "                    add cost columns to the --csv report\n"
                 "  --cost-csv FILE   write the cost attribution CSV\n"
                 "  --cost-json FILE  write the cost attribution JSON\n"
                 "  --quiet           suppress the classification tables\n",
                 argv0);
    return 1;
}

std::string baseName(const std::string& path)
{
    const std::size_t slash = path.find_last_of("/\\");
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

} // namespace

int main(int argc, char** argv)
{
    if (argc < 2) {
        return usage(argv[0]);
    }
    const std::string netlistPath = argv[1];
    io::IngestConfig config;
    io::FaultListOptions faultOptions;
    unsigned workers = 1;
    bool useBatch = false;
    bool collapse = false;
    bool quiet = false;
    std::string storeDir;
    std::string csvPath;
    std::string jsonPath;
    std::string ansPath;
    std::string shaPath;
    std::string verifyPath;
    bool progress = false;
    std::string metricsPath;
    std::string tracePath;
    std::string forensicsDir;
    std::uint64_t maxWaves = 0;
    bool costTable = false;
    std::string costCsvPath;
    std::string costJsonPath;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--patterns") {
            config.patternCount = std::atoi(value());
        } else if (arg == "--seed") {
            config.patternSeed = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--workers") {
            workers = static_cast<unsigned>(std::atoi(value()));
        } else if (arg == "--batch") {
            useBatch = true;
        } else if (arg == "--collapse") {
            collapse = true;
        } else if (arg == "--set") {
            faultOptions.setPulses = true;
        } else if (arg == "--store") {
            storeDir = value();
        } else if (arg == "--csv") {
            csvPath = value();
        } else if (arg == "--json") {
            jsonPath = value();
        } else if (arg == "--ans") {
            ansPath = value();
        } else if (arg == "--write-sha") {
            shaPath = value();
        } else if (arg == "--verify") {
            verifyPath = value();
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "--metrics") {
            metricsPath = value();
        } else if (arg == "--trace") {
            tracePath = value();
        } else if (arg == "--forensics") {
            forensicsDir = value();
        } else if (arg == "--max-waves") {
            maxWaves = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--cost") {
            costTable = true;
        } else if (arg == "--cost-csv") {
            costCsvPath = value();
        } else if (arg == "--cost-json") {
            costJsonPath = value();
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            return usage(argv[0]);
        }
    }

    try {
        // --- parse + workload ------------------------------------------------
        io::NetlistDesc desc = io::parseNetlistFile(netlistPath);
        io::IngestWorkload workload = io::makeWorkload(std::move(desc), config, faultOptions);
        if (!quiet) {
            std::printf("circuit %s: %zu inputs, %zu outputs, %zu gates\n",
                        workload.netlist->name.c_str(), workload.netlist->inputs.size(),
                        workload.netlist->outputs.size(), workload.netlist->gates.size());
            std::printf("  netlist  %s\n", workload.netlistDigest.c_str());
            std::printf("  stimulus %s  (%d patterns, seed %llu)\n",
                        workload.stimulusDigest.c_str(), config.patternCount,
                        static_cast<unsigned long long>(config.patternSeed));
            std::printf("  faults   %s  (%zu faults)\n\n", workload.faultDigest.c_str(),
                        workload.faults.size());
        }

        // --- event-driven campaign (memoized when a store is given) ----------
        campaign::CampaignRunner runner(workload.factory());
        runner.setWorkers(workers);
        runner.setFaultCollapsing(collapse);
        if (maxWaves > 0) {
            WatchdogConfig wd;
            wd.digitalWaves = maxWaves;
            runner.setWatchdogConfig(wd);
        }
        if (!forensicsDir.empty()) {
            runner.setForensics(forensicsDir);
        }
        obs::Telemetry telemetry;
        if (!metricsPath.empty() || !tracePath.empty()) {
            telemetry.setMetricsPath(metricsPath);
            telemetry.setTracePath(tracePath);
            runner.setTelemetry(telemetry);
        }
        if (progress) {
            runner.setProgressSink(
                [](const std::string& line) { std::fputs(line.c_str(), stderr); });
        }

        campaign::CampaignReport report;
        if (!storeDir.empty()) {
            io::GoldenStore store(storeDir);
            io::CachedCampaign cached = io::runCampaignCached(runner, workload, store);
            report = std::move(cached.report);
            if (!quiet) {
                std::printf("golden store: %s  [%s]\n\n", cached.key.c_str(),
                            cached.hit ? "hit — replayed, nothing simulated" : "miss — recorded");
            }
        } else {
            report = runner.run(workload.faults);
        }
        const std::string ansText = io::renderAnsText(workload, report);

        // --- batch cross-check (always simulated, never replayed) ------------
        if (useBatch) {
            campaign::CampaignRunner batchRunner(workload.factory());
            batchRunner.setWorkers(workers);
            batchRunner.setFaultCollapsing(collapse);
            batchRunner.setBatchBackend(true);
            const campaign::CampaignReport batchReport = batchRunner.run(workload.faults);
            const std::string batchAns = io::renderAnsText(workload, batchReport);
            if (batchAns != ansText) {
                std::fprintf(stderr,
                             "FAIL: bit-parallel batch verdicts diverge from the "
                             "event-driven kernel\n");
                return 2;
            }
            if (!quiet) {
                std::printf("batch backend: %zu runs, verdicts identical to "
                            "event-driven\n\n",
                            batchReport.runs.size());
            }
        }

        // --- artifacts -------------------------------------------------------
        if (!ansPath.empty()) {
            std::ofstream out(ansPath, std::ios::binary | std::ios::trunc);
            if (!(out << ansText)) {
                std::fprintf(stderr, "%s: cannot write %s\n", argv[0], ansPath.c_str());
                return 1;
            }
        }
        if (!csvPath.empty()) {
            campaign::CsvOptions csvOptions;
            csvOptions.costColumns = costTable;
            campaign::writeReportCsv(report, csvPath, csvOptions);
        }
        if (!jsonPath.empty()) {
            campaign::writeReportJson(report, jsonPath);
        }
        if (costTable || !costCsvPath.empty() || !costJsonPath.empty()) {
            const campaign::CostReport cost = campaign::buildCostReport(report);
            if (!costCsvPath.empty()) {
                cost.writeCsv(costCsvPath);
            }
            if (!costJsonPath.empty()) {
                std::ofstream out(costJsonPath, std::ios::binary | std::ios::trunc);
                if (!(out << cost.toJson() << "\n")) {
                    std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                                 costJsonPath.c_str());
                    return 1;
                }
            }
            if (costTable && !quiet) {
                std::printf("%s\n", cost.table().c_str());
            }
        }
        if (!metricsPath.empty() || !tracePath.empty()) {
            telemetry.flush();
        }

        const std::string ansSha = io::sha256Hex(ansText);
        if (!shaPath.empty()) {
            // sha256sum -c compatible: "<sha>  <file>"; the named file is the
            // .ans the digest was taken over.
            const std::string ansName =
                ansPath.empty() ? workload.netlist->name + ".ans" : baseName(ansPath);
            std::ofstream out(shaPath, std::ios::binary | std::ios::trunc);
            if (!(out << ansSha << "  " << ansName << "\n")) {
                std::fprintf(stderr, "%s: cannot write %s\n", argv[0], shaPath.c_str());
                return 1;
            }
        }
        if (!verifyPath.empty()) {
            std::ifstream in(verifyPath);
            std::string expected;
            if (!(in >> expected) || !io::looksLikeSha256(expected)) {
                std::fprintf(stderr, "%s: %s does not start with a SHA-256 digest\n",
                             argv[0], verifyPath.c_str());
                return 1;
            }
            if (expected != ansSha) {
                std::fprintf(stderr,
                             "FAIL: verdict digest mismatch for %s\n  expected %s\n  "
                             "computed %s\n",
                             workload.netlist->name.c_str(), expected.c_str(),
                             ansSha.c_str());
                return 3;
            }
            if (!quiet) {
                std::printf("verdict digest verified against %s\n\n", verifyPath.c_str());
            }
        }

        if (!quiet) {
            std::printf("%s\n", report.summaryTable().c_str());
            std::printf("verdict sha256: %s\n", ansSha.c_str());
        }
        return 0;
    } catch (const io::NetlistParseError& e) {
        std::fprintf(stderr, "parse error: %s\n", e.what());
        return 1;
    } catch (const lint::PreflightError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
