// Static-analysis demo: lint every example design and render the reports,
// then show the campaign preflight rejecting a typo'd fault list up front.
// Exits non-zero if any known-good design stops linting clean, so CI can run
// it as a design-quality gate.

#include "adc/flash.hpp"
#include "adc/sar.hpp"
#include "core/campaign.hpp"
#include "duts/digital_dut.hpp"
#include "duts/protected_dut.hpp"
#include "duts/tiny_cpu.hpp"
#include "lint/lint.hpp"
#include "pll/pll.hpp"

#include <cstdio>
#include <memory>

using namespace gfi;

namespace {

template <typename TB>
bool lintOne(const char* label)
{
    TB tb;
    const lint::Report rep = lint::lintTestbench(tb);
    std::printf("== %s: %s\n", label, rep.summary().c_str());
    if (rep.size() > 0) {
        std::printf("%s\n", rep.table().c_str());
    }
    return rep.clean();
}

} // namespace

int main()
{
    bool allClean = true;
    allClean = lintOne<duts::DigitalDutTestbench>("digital DUT") && allClean;
    allClean = lintOne<duts::ProtectedDutTestbench>("protected DUT") && allClean;
    allClean = lintOne<duts::TinyCpuTestbench>("tiny CPU") && allClean;
    allClean = lintOne<pll::PllTestbench>("PLL") && allClean;
    allClean = lintOne<adc::SarAdcTestbench>("SAR ADC") && allClean;
    allClean = lintOne<adc::FlashAdcTestbench>("flash ADC") && allClean;

    // Campaign preflight: a fault list with a typo'd target fails before any
    // simulation, with one structured report instead of N sim-error rows.
    campaign::CampaignRunner runner(
        [] { return std::make_unique<duts::DigitalDutTestbench>(); });
    const std::vector<fault::FaultSpec> faults{
        fault::BitFlipFault{"dut/out_reg", 4, kMicrosecond},
        fault::BitFlipFault{"dut/out_rge", 4, kMicrosecond}, // typo
    };
    try {
        runner.run(faults);
        std::printf("preflight unexpectedly passed\n");
        return 1;
    } catch (const lint::PreflightError& e) {
        std::printf("\n== campaign preflight rejected the fault list:\n%s\n",
                    e.report().table().c_str());
    }

    return allClean ? 0 : 1;
}
