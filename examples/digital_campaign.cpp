// The paper's digital flow (Section 3, Figure 2) as a campaign: exhaustive
// SEU bit-flips over every instrumented state element of a controller +
// datapath block, at several injection times, plus SET pulses through the
// interconnect saboteurs — ending in the classification table and the
// error-propagation model ("behavioural model generation" box of Figure 2).

#include "core/campaign.hpp"
#include "duts/digital_dut.hpp"
#include "util/rng.hpp"

#include <cstdio>

using namespace gfi;

int main()
{
    duts::DigitalDutConfig cfg;
    campaign::CampaignRunner runner(
        [cfg] { return std::make_unique<duts::DigitalDutTestbench>(cfg); });

    // Fault-tolerant execution: budget each run so a pathological fault can
    // never hang the campaign, retry solver flakes once with a tightened
    // step, and checkpoint every result so a killed campaign resumes here.
    WatchdogConfig watchdog;
    watchdog.wallClockSeconds = 30.0;
    runner.setWatchdogConfig(watchdog);
    campaign::RetryPolicy retry;
    retry.maxAttempts = 2;
    runner.setRetryPolicy(retry);
    runner.setJournalPath("digital_campaign.journal.jsonl");

    // --- fault-list generation: all state bits x sampled injection times ------
    auto probe = runner.makeTestbench();
    const auto& registry = probe->sim().digital().instrumentation();
    std::printf("Instrumented design: %zu state elements, %d injectable bits\n",
                registry.names().size(), registry.totalBits());

    std::vector<fault::FaultSpec> faults;
    const std::vector<SimTime> times{kMicrosecond + 7 * kNanosecond,
                                     2 * kMicrosecond + 13 * kNanosecond,
                                     3 * kMicrosecond + 3 * kNanosecond};
    for (const auto& [name, hook] : registry.all()) {
        for (int bit = 0; bit < hook.width; ++bit) {
            for (SimTime t : times) {
                faults.emplace_back(fault::BitFlipFault{name, bit, t});
            }
        }
    }
    // SET pulses on the two instrumented interconnections.
    for (const std::string& sab : probe->digitalSaboteurNames()) {
        for (SimTime t : times) {
            faults.emplace_back(fault::DigitalPulseFault{sab, t, 25 * kNanosecond});
        }
    }
    std::printf("Fault list: %zu faults (exhaustive bit-flips x %zu times + SETs)\n\n",
                faults.size(), times.size());

    // --- run and classify --------------------------------------------------------
    campaign::PropagationModel propagation;
    const auto report = runner.run(faults, [&](std::size_t i, const campaign::RunResult& r) {
        propagation.record(campaign::targetOf(r.fault), r.erredSignals);
        if ((i + 1) % 50 == 0) {
            std::printf("  ... %zu/%zu runs done\n", i + 1, faults.size());
        }
    });

    std::printf("\nClassification (paper Figure 2, 'failure report / classification'):\n%s\n",
                report.summaryTable().c_str());

    std::printf("Error-propagation model (which target reaches which output):\n%s\n",
                propagation.table().c_str());

    // Per-target outcome breakdown.
    std::printf("Most fragile targets (failure counts):\n");
    std::map<std::string, int> failures;
    for (const auto& r : report.runs) {
        if (r.outcome == campaign::Outcome::Failure) {
            ++failures[campaign::targetOf(r.fault)];
        }
    }
    for (const auto& [target, n] : failures) {
        std::printf("  %-20s %d\n", target.c_str(), n);
    }
    return 0;
}
