// Quickstart: the unified fault-injection flow on a minimal mixed-signal
// circuit, end to end, in ~100 lines.
//
// Circuit: a sine source feeds a comparator (A->D bridge) whose square-wave
// output clocks a 4-bit counter. We inject (a) an SEU bit-flip in the counter
// (digital mutant) and (b) a current pulse on the analog node (saboteur), and
// classify both against the golden run.

#include "ams/bridge.hpp"
#include "analog/passive.hpp"
#include "analog/sources.hpp"
#include "core/campaign.hpp"
#include "digital/sequential.hpp"

#include <cstdio>
#include <memory>

using namespace gfi;

namespace {

// A Testbench bundles the simulator, instrumentation registries, recorded
// traces and the observation config the classifier compares.
std::unique_ptr<fault::Testbench> buildBench()
{
    auto tb = std::make_unique<fault::Testbench>();
    auto& ana = tb->sim().analog();
    auto& dig = tb->sim().digital();

    // Analog: 1 MHz sine, 0..5 V, lightly loaded.
    const analog::NodeId osc = ana.node("osc");
    ana.add<analog::SineVoltage>(ana, "vsine", osc, analog::kGround, 2.5, 2.5, 1e6);
    ana.add<analog::Resistor>(ana, "rload", osc, analog::kGround, 10e3);

    // Comparator bridge: analog sine -> digital clock (threshold 2.5 V).
    auto& clk = dig.logicSignal("clk", digital::Logic::U);
    tb->make<ams::AtoDBridge>(tb->sim(), "digitizer", osc, clk, 2.5);

    // Digital: 4-bit counter on the recovered clock.
    digital::Bus q = dig.bus("count", 4, digital::Logic::U);
    dig.add<digital::Counter>(dig, "counter", clk, q);

    // Instrumentation: a current saboteur on the analog node (the paper's
    // GenCur block) — the counter registered its own mutant hook already.
    auto& sab = ana.add<fault::CurrentSaboteur>(ana, "sab/osc", osc);
    tb->addCurrentSaboteur(sab);

    // Observe: all counter bits (digital), the sine node (analog, with
    // tolerance), and every state element for latent-fault detection.
    for (int b = 0; b < 4; ++b) {
        tb->observeDigital("count[" + std::to_string(b) + "]");
    }
    tb->observeAnalog("osc");
    tb->observeAllState();
    tb->setDuration(20 * kMicrosecond);
    return tb;
}

} // namespace

int main()
{
    campaign::CampaignRunner runner(buildBench, campaign::Tolerance{/*abs=*/50e-3});

    std::vector<fault::FaultSpec> faults;

    // (a) SEU: flip counter bit 2 at 7.3 us.
    faults.emplace_back(fault::BitFlipFault{"counter", 2, fromSeconds(7.3e-6)});

    // (b) SET: a 10 mA / 500 ps current pulse on the oscillator node at 5 us
    //     (the paper's Figure 1a trapezoid model).
    fault::CurrentPulseFault pulse;
    pulse.saboteur = "sab/osc";
    pulse.timeSeconds = 5e-6;
    pulse.shape = std::make_shared<fault::TrapezoidPulse>(
        /*PA=*/10e-3, /*RT=*/100e-12, /*FT=*/300e-12, /*PW=*/500e-12);
    faults.emplace_back(pulse);

    // (c) The same charge as a classical double-exponential (Messenger) pulse.
    fault::CurrentPulseFault dexp = pulse;
    dexp.shape = std::make_shared<fault::DoubleExpPulse>(10e-3, 50e-12, 500e-12);
    faults.emplace_back(dexp);

    const campaign::CampaignReport report = runner.run(
        faults, [](std::size_t i, const campaign::RunResult& r) {
            std::printf("run %zu: %-60s -> %s\n", i + 1, fault::describe(r.fault).c_str(),
                        campaign::toString(r.outcome));
        });

    std::printf("\n%s\n", report.summaryTable().c_str());
    std::printf("%s\n", report.detailTable().c_str());
    return 0;
}
