// SPICE-deck-driven fault injection: parse an analog netlist (with a saboteur
// declared as an X card), run a transient with an SEU current pulse, and
// print the disturbed waveform — the shortest path from an existing deck to
// the paper's analog injection flow.

#include "analog/netlist.hpp"
#include "analog/solver.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <cstdio>

using namespace gfi;
using namespace gfi::analog;

int main()
{
    // A two-pole anti-aliasing filter driven by a 100 kHz sine, with a
    // saboteur on the internal node.
    const char* deck = R"(
* Sallen-Key-ish RC chain with an injection point on the mid node
VIN in  0   SIN(2.5 1.0 100k)
R1  in  mid 10k
C1  mid 0   1n
R2  mid out 10k
C2  out 0   1n
XSAB mid
.end
)";

    AnalogSystem sys;
    const NetlistResult parsed = parseNetlist(deck, sys);
    std::printf("Parsed %d components, %zu saboteur(s)\n", parsed.componentCount,
                parsed.saboteurs.size());

    // Arm the paper's Figure 6 pulse on the netlist-declared injection point.
    fault::CurrentSaboteur* sab = parsed.saboteurs.at("XSAB");
    const double tInject = 20e-6;
    fault::TrapezoidPulse pulse(10e-3, 100e-12, 300e-12, 500e-12);
    sab->arm(tInject, pulse);
    std::printf("Armed %s at t = %s on node '%s'\n\n", pulse.describe().c_str(),
                formatSi(tInject, "s").c_str(), "mid");

    TransientSolver solver(sys);
    solver.solveDc();

    // Sample the two filter nodes around the injection.
    const NodeId mid = sys.node("mid");
    const NodeId out = sys.node("out");
    TextTable t;
    t.setHeader({"time", "V(mid)", "V(out)"});
    const std::vector<double> sampleTimes{19.5e-6, 20.0e-6 + 0.4e-9, 20.0e-6 + 0.1e-6,
                                          20.5e-6, 21e-6, 22e-6, 24e-6, 28e-6};
    for (double ts : sampleTimes) {
        solver.advanceTo(ts);
        t.addRow({formatSi(ts, "s"), formatSi(sys.voltage(mid), "V", 5),
                  formatSi(sys.voltage(out), "V", 5)});
    }
    t.print();

    std::printf("\nThe 3 pC strike bumps V(mid) by ~Q/C1 = 3 mV and the second pole\n"
                "smooths it into V(out) over R2*C2 = 10 us — the netlist front-end\n"
                "feeds the exact same solver and saboteur machinery as the C++ API.\n");
    return 0;
}
