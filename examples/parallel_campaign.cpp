// Quickstart: parallel fault-injection campaigns.
//
// The same exhaustive bit-flip campaign runs twice over the digital DUT —
// once serial (1 worker), once on the full worker pool (GFI_JOBS or all
// cores) — and the program prints both wall-clock times plus proof that the
// classification is identical: results commit in fault-list order, so a
// parallel campaign's report and journal are byte-identical to a serial run.

#include "core/campaign.hpp"
#include "duts/digital_dut.hpp"
#include "util/units.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

using namespace gfi;

int main()
{
    // Campaign definition: every stored bit x 2 injection times.
    const duts::DigitalDutTestbench probe;
    const std::vector<SimTime> times{2 * kMicrosecond + 7 * kNanosecond,
                                     3 * kMicrosecond + 3 * kNanosecond};
    std::vector<fault::FaultSpec> faults;
    for (const auto& [name, hook] : probe.sim().digital().instrumentation().all()) {
        for (int bit = 0; bit < hook.width; ++bit) {
            for (SimTime t : times) {
                faults.emplace_back(fault::BitFlipFault{name, bit, t});
            }
        }
    }

    auto runWith = [&faults](unsigned workers, double& seconds) {
        campaign::CampaignRunner runner(
            [] { return std::make_unique<duts::DigitalDutTestbench>(); });
        runner.setWorkers(workers);
        const auto start = std::chrono::steady_clock::now();
        campaign::CampaignReport report = runner.run(faults);
        seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                      .count();
        return report;
    };

    double serialSeconds = 0.0;
    double parallelSeconds = 0.0;
    const unsigned pool = core::Executor().effectiveWorkers(); // GFI_JOBS / cores
    const auto serial = runWith(1, serialSeconds);
    const auto parallel = runWith(pool, parallelSeconds);

    std::printf("exhaustive bit-flip campaign: %zu faults\n", faults.size());
    std::printf("  serial   (1 worker):  %.3f s\n", serialSeconds);
    std::printf("  parallel (%u workers): %.3f s  (%.2fx)\n", pool, parallelSeconds,
                parallelSeconds > 0.0 ? serialSeconds / parallelSeconds : 0.0);

    const bool identical = serial.summaryTable() == parallel.summaryTable();
    std::printf("\nclassification identical to serial: %s\n", identical ? "yes" : "NO");
    std::printf("%s\n", parallel.summaryTable().c_str());

    // With GFI_TRACE / GFI_METRICS set, each campaign wrote its telemetry on
    // completion (the parallel run's files are the ones left behind). Load
    // the trace in https://ui.perfetto.dev to see the per-worker timeline.
    if (const char* trace = std::getenv("GFI_TRACE")) {
        std::printf("telemetry: Chrome trace written to %s\n", trace);
    }
    if (const char* metrics = std::getenv("GFI_METRICS")) {
        std::printf("telemetry: metrics dump written to %s\n", metrics);
    }
    return identical ? 0 : 1;
}
