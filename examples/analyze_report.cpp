// Static fault-space analysis demo: run the pre-simulation analyzer over
// every example design and render the structural summary plus the SCOAP
// testability ranking, then show the fault collapser shrinking a chain-DUT
// sweep before a single simulation step runs.
//
// Exits non-zero if any known-good design reports a combinational cycle or
// loses all observability, so CI can run it as a static-quality gate.

#include "adc/flash.hpp"
#include "adc/sar.hpp"
#include "analyze/analyze.hpp"
#include "analyze/collapse.hpp"
#include "duts/chain_dut.hpp"
#include "duts/digital_dut.hpp"
#include "duts/protected_dut.hpp"
#include "duts/tiny_cpu.hpp"
#include "pll/pll.hpp"

#include <cstdio>

using namespace gfi;

namespace {

template <typename TB>
bool analyzeOne(const char* label)
{
    TB tb;
    const analyze::AnalysisReport rep = analyze::analyzeTestbench(tb);
    std::printf("== %s\n%s\n", label, rep.table(/*topN=*/5).c_str());
    if (rep.cyclicSignals > 0) {
        std::printf("FAIL: %zu signal(s) inside a combinational cycle\n",
                    rep.cyclicSignals);
        return false;
    }
    if (rep.observableSignals == 0) {
        std::printf("FAIL: no observable signals — the whole fault space is dark\n");
        return false;
    }
    return true;
}

} // namespace

int main()
{
    bool ok = true;
    ok = analyzeOne<duts::DigitalDutTestbench>("digital DUT") && ok;
    ok = analyzeOne<duts::ProtectedDutTestbench>("protected DUT") && ok;
    ok = analyzeOne<duts::TinyCpuTestbench>("tiny CPU") && ok;
    ok = analyzeOne<pll::PllTestbench>("PLL") && ok;
    ok = analyzeOne<adc::SarAdcTestbench>("SAR ADC") && ok;
    ok = analyzeOne<adc::FlashAdcTestbench>("flash ADC") && ok;
    ok = analyzeOne<duts::ChainDutTestbench>("interconnect chain") && ok;

    // Fault collapsing preview on the chain DUT: a SET sweep over all six
    // chain saboteurs plus the dead branch collapses to one representative
    // per injection point plus one statically-masked class.
    duts::ChainDutTestbench tb;
    std::vector<fault::FaultSpec> faults;
    for (const std::string& sab : duts::ChainDutTestbench::chainSaboteurs()) {
        faults.emplace_back(fault::DigitalPulseFault{sab, kMicrosecond, 2 * kNanosecond});
        faults.emplace_back(fault::StuckAtFault{sab, digital::Logic::One, kMicrosecond});
    }
    faults.emplace_back(fault::DigitalPulseFault{duts::ChainDutTestbench::deadSaboteur(),
                                                 kMicrosecond, 2 * kNanosecond});
    const analyze::CollapsePlan plan = analyze::collapseFaults(tb, faults);
    std::printf("== chain collapse: %zu faults -> %zu classes (%zu runs saved)\n",
                faults.size(), plan.classes(), plan.collapsedRuns());
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const std::string dest =
            plan.isRepresentative(i)
                ? "representative"
                : "collapsed into " + fault::describe(faults[plan.repOf[i]]);
        std::printf("  %-44s -> %s\n", fault::describe(faults[i]).c_str(), dest.c_str());
    }
    if (plan.collapsedRuns() == 0) {
        std::printf("FAIL: chain sweep did not collapse at all\n");
        ok = false;
    }

    return ok ? 0 : 1;
}
