// The paper's case study (Section 5), runnable end to end:
// lock the 500 kHz -> 50 MHz PLL, inject the Figure 6 current pulse at the
// low-pass-filter input once locked, quantify the clock perturbation, and
// dump the waveforms (CSV + VCD) for inspection in any waveform viewer.

#include "core/campaign.hpp"
#include "pll/pll.hpp"
#include "trace/metrics.hpp"
#include "util/units.hpp"

#include <cstdio>

using namespace gfi;

int main()
{
    pll::PllConfig cfg;
    cfg.duration = 200 * kMicrosecond;
    const double tInject = 150e-6; // after lock (~92 us with this loop)

    std::printf("Building the PLL: %s reference, /%d feedback, %s output...\n",
                formatSi(cfg.refFrequency, "Hz").c_str(), cfg.dividerN,
                formatSi(cfg.refFrequency * cfg.dividerN, "Hz").c_str());

    // Tolerances: 5 mV on the VCO control node; output-clock edge offsets
    // below 1 % of the 20 ns period (200 ps) count as re-locked — the
    // residual phase error of a type-2 loop decays exponentially and takes
    // far longer to vanish exactly than to become functionally irrelevant.
    campaign::CampaignRunner runner(
        [cfg] { return std::make_unique<pll::PllTestbench>(cfg); },
        campaign::Tolerance{5e-3, 0.0, 200 * kPicosecond});

    // --- golden run: verify lock -------------------------------------------
    runner.runGolden();
    const auto& goldenFout = runner.golden().recorder().digitalTrace(pll::names::kFout);
    const SimTime nominal = cfg.nominalOutputPeriod();
    const SimTime tLock = pll::lockTime(goldenFout, nominal);
    std::printf("Golden run: locked at t = %s (output period %s)\n",
                formatTime(tLock).c_str(), formatTime(nominal).c_str());

    // --- the Figure 6 injection ---------------------------------------------
    fault::CurrentPulseFault f;
    f.saboteur = pll::names::kSabFilter;
    f.timeSeconds = tInject;
    f.shape = std::make_shared<fault::TrapezoidPulse>(10e-3, 100e-12, 300e-12, 500e-12);
    std::printf("\nInjecting %s at the filter input at t = %s\n",
                f.shape->describe().c_str(), formatSi(tInject, "s").c_str());
    std::printf("(pulse width = %.1f %% of one 20 ns output clock period)\n",
                100.0 * f.shape->duration() / toSeconds(nominal));

    const auto result = runner.runOne(fault::FaultSpec{f});
    std::printf("\nClassification: %s\n", campaign::toString(result.outcome));
    std::printf("  max VCO-control deviation : %s\n",
                formatSi(result.maxAnalogDeviation, "V").c_str());
    std::printf("  time outside 5 mV tolerance: %s\n",
                formatSi(result.analogTimeOutsideTol, "s").c_str());

    // --- per-cycle clock analysis ---------------------------------------------
    auto tb = runner.makeTestbench();
    fault::armFault(*tb, fault::FaultSpec{f});
    tb->run();
    const auto pert = trace::compareClocks(goldenFout,
                                           tb->recorder().digitalTrace(pll::names::kFout),
                                           1e-3, fromSeconds(tInject - 1e-6));
    std::printf("\nClock perturbation (threshold: 0.1 %% period deviation):\n");
    std::printf("  perturbed cycles          : %d (a single 500 ps pulse!)\n",
                pert.perturbedCycles);
    std::printf("  perturbation span         : %s\n",
                formatTime(pert.perturbationSpan()).c_str());
    std::printf("  max period deviation      : %.3f %% (period %s)\n",
                100.0 * pert.maxRelDeviation, formatTime(pert.maxDeviationPeriod).c_str());

    // --- waveform export ----------------------------------------------------------
    const auto& vGolden = runner.golden().recorder().analogTrace(pll::names::kVctrl);
    const auto& vFaulty = tb->recorder().analogTrace(pll::names::kVctrl);
    trace::AnalogTrace goldenNamed = vGolden;
    goldenNamed.name = "vctrl_golden";
    trace::AnalogTrace faultyNamed = vFaulty;
    faultyNamed.name = "vctrl_faulty";
    trace::writeAnalogCsv("pll_vctrl.csv", {&goldenNamed, &faultyNamed});
    trace::writeVcd("pll_faulty.vcd",
                    {&tb->recorder().digitalTrace(pll::names::kFout),
                     &tb->recorder().digitalTrace(pll::names::kUp),
                     &tb->recorder().digitalTrace(pll::names::kDown)},
                    {&faultyNamed});
    std::printf("\nWaveforms written: pll_vctrl.csv, pll_faulty.vcd\n");
    return 0;
}
