// ADC sensitivity campaign — the paper's stated future work ("analog to
// digital converters") and the experiment style of its reference [9]
// (Singh & Koren): compare the SEU sensitivity of the analog part (ladder
// taps, DAC settling node) against the digital part (registers, SAR logic)
// of two converter architectures under the same particle charge.

#include "adc/flash.hpp"
#include "adc/sar.hpp"
#include "core/campaign.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <cstdio>

using namespace gfi;

namespace {

struct Row {
    std::string part;
    std::string target;
    int runs = 0;
    int nonSilent = 0;
};

void printRows(const char* title, const std::vector<Row>& rows)
{
    std::printf("%s\n", title);
    TextTable t;
    t.setHeader({"part", "target", "runs", "non-silent", "sensitivity"});
    for (const Row& r : rows) {
        t.addRow({r.part, r.target, std::to_string(r.runs), std::to_string(r.nonSilent),
                  formatDouble(100.0 * r.nonSilent / std::max(r.runs, 1), 3) + " %"});
    }
    t.print();
    std::printf("\n");
}

} // namespace

int main()
{
    // The same deposited charge everywhere: a 5 mA / 1 ns triangle (~2.5 pC).
    auto charge = std::make_shared<fault::TrapezoidPulse>(5e-3, 500e-12, 500e-12, 1e-9);

    // ---------------- flash ADC ------------------------------------------------
    {
        adc::FlashConfig cfg;
        campaign::CampaignRunner runner(
            [cfg] { return std::make_unique<adc::FlashAdcTestbench>(cfg); },
            campaign::Tolerance{20e-3});
        // Analog strikes can diverge the solver: bound each run and retry
        // once with a tightened step instead of aborting the sweep.
        runner.setWatchdogConfig(WatchdogConfig{.wallClockSeconds = 30.0});
        runner.setRetryPolicy(campaign::RetryPolicy{.maxAttempts = 2});
        const adc::FlashAdcTestbench probe(cfg); // target enumeration only

        std::vector<Row> rows;
        // Analog part: every ladder tap. A disturbance on a tap only matters
        // if it is still present when the 5 MHz sample clock captures the
        // thermometer code (the paper's Section 4.1 point that the *exact*
        // analog injection time matters) — inject just before sample edges.
        const std::vector<double> timesA{4e-6 - 0.5e-9, 8e-6 - 0.5e-9, 12e-6 - 0.5e-9};
        for (const std::string& sab : probe.tapSaboteurs()) {
            Row row{"analog", sab};
            for (double t : timesA) {
                const auto r = runner.runOne(
                    fault::FaultSpec{fault::CurrentPulseFault{sab, t, charge}});
                ++row.runs;
                row.nonSilent += r.outcome != campaign::Outcome::Silent ? 1 : 0;
            }
            rows.push_back(row);
        }
        // Digital part: every output-register bit at the same times.
        Row digRow{"digital", "adc/code_reg"};
        for (int bit = 0; bit < cfg.bits; ++bit) {
            for (double t : timesA) {
                const auto r = runner.runOne(fault::FaultSpec{
                    fault::BitFlipFault{"adc/code_reg", bit, fromSeconds(t)}});
                ++digRow.runs;
                digRow.nonSilent += r.outcome != campaign::Outcome::Silent ? 1 : 0;
            }
        }
        rows.push_back(digRow);
        printRows("Flash ADC sensitivity (2.5 pC on every target):", rows);
    }

    // ---------------- SAR ADC ----------------------------------------------------
    {
        adc::SarConfig cfg;
        campaign::CampaignRunner runner(
            [cfg] { return std::make_unique<adc::SarAdcTestbench>(cfg); },
            campaign::Tolerance{20e-3});

        std::vector<Row> rows;
        const double conv1 = toSeconds(cfg.levelHold); // second conversion window
        const std::vector<double> times{conv1 + 1.3e-6, conv1 + 2.6e-6, conv1 + 3.9e-6};

        for (const char* sab : {"sab/vin", "sab/dac_out"}) {
            Row row{"analog", sab};
            for (double t : times) {
                const auto r = runner.runOne(
                    fault::FaultSpec{fault::CurrentPulseFault{sab, t, charge}});
                ++row.runs;
                row.nonSilent += r.outcome != campaign::Outcome::Silent ? 1 : 0;
            }
            rows.push_back(row);
        }
        for (const char* target : {"adc/sar/code", "adc/sar/bit"}) {
            Row row{"digital", target};
            const int width = target == std::string("adc/sar/code") ? cfg.bits : 4;
            for (int bit = 0; bit < width; ++bit) {
                for (double t : times) {
                    const auto r = runner.runOne(fault::FaultSpec{
                        fault::BitFlipFault{target, bit, fromSeconds(t)}});
                    ++row.runs;
                    row.nonSilent += r.outcome != campaign::Outcome::Silent ? 1 : 0;
                }
            }
            rows.push_back(row);
        }
        printRows("SAR ADC sensitivity (2.5 pC / bit-flips mid-conversion):", rows);
    }

    std::printf("Reference [9]'s transistor-level finding — that the analog part of a\n"
                "converter can be MORE sensitive than the digital part — can now be\n"
                "checked at the behavioral level, early in the design flow.\n");
    return 0;
}
