// Processor-injection supervisor: architectural SEU campaign + hardening
// sweep over the TinyCpu system.
//
// Samples (cycle, target, bit) triples over the full architectural state —
// PC, accumulator, RUN/HALT FSM, data RAM, output register — and runs the
// same seeded campaign against five hardening variants. Each run gets a
// COAST-style verdict (masked / corrected / detected / SDC / hang /
// contained); the report prints per-target-class cross-sections with Wilson
// 95 % intervals and writes the sweep as JSON.
//
//   usage: example_processor_campaign [samples] [json-path]
//            [--metrics FILE] [--trace FILE]
//
// Exits nonzero unless hardening the RAM (SEC-DED + scrubbing) strictly
// reduces the RAM-target SDC cross-section versus the unprotected system —
// the flow's whole point is measuring that improvement before silicon.

#include "inject/sweep.hpp"
#include "obs/telemetry.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace gfi;

int main(int argc, char** argv)
{
    std::vector<std::string> positional;
    std::string metricsPath;
    std::string tracePath;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--metrics") {
            metricsPath = value();
        } else if (arg == "--trace") {
            tracePath = value();
        } else {
            positional.push_back(arg);
        }
    }
    const std::size_t samples =
        !positional.empty()
            ? static_cast<std::size_t>(std::strtoul(positional[0].c_str(), nullptr, 10))
            : 160;
    const std::string jsonPath = positional.size() > 1 ? positional[1] : "cpu_sweep.json";

    std::printf("=== Processor-injection supervisor: hardening sweep ===\n\n");
    std::printf("TinyCpu system, 50 MHz, %zu seeded architectural SEUs per variant\n"
                "(bit-weighted over PC/ACC/FSM/RAM/out-register, uniform over the\n"
                "golden execution window).\n\n",
                samples);

    const duts::CpuSystemConfig base;
    inject::SweepOptions options;
    options.samples = samples;
    options.seed = 0x5EED;
    obs::Telemetry telemetry;
    if (!metricsPath.empty() || !tracePath.empty()) {
        telemetry.setMetricsPath(metricsPath);
        telemetry.setTracePath(tracePath);
        options.telemetry = &telemetry;
    }
    const inject::SweepReport sweep = inject::runHardeningSweep(
        base,
        {duts::HardeningMode::None, duts::HardeningMode::Tmr, duts::HardeningMode::Dwc,
         duts::HardeningMode::EccScrub, duts::HardeningMode::TmrEccScrub},
        options);

    std::printf("%s\n", sweep.table().c_str());
    std::printf("Per-target-class cross-sections, unprotected vs ECC+scrub:\n\n");
    std::printf("--- none ---\n%s\n", sweep.report(duts::HardeningMode::None).table().c_str());
    std::printf("--- ECC+scrub ---\n%s\n",
                sweep.report(duts::HardeningMode::EccScrub).table().c_str());

    std::ofstream out(jsonPath, std::ios::binary);
    out << sweep.json() << "\n";
    out.close();
    std::printf("sweep written to %s\n", jsonPath.c_str());
    if (options.telemetry != nullptr) {
        telemetry.flush();
    }

    // Self-check: the RAM-target SDC cross-section must strictly decrease
    // when the data memory is protected.
    const campaign::Proportion sdcNone = sweep.rate(
        duts::HardeningMode::None, inject::TargetClass::Ram,
        inject::CpuClass::SilentDataCorruption);
    const campaign::Proportion sdcEcc = sweep.rate(
        duts::HardeningMode::EccScrub, inject::TargetClass::Ram,
        inject::CpuClass::SilentDataCorruption);
    std::printf("\nRAM-target SDC: none %.3f (%d/%d)  ->  ECC+scrub %.3f (%d/%d)\n",
                sdcNone.estimate, sdcNone.successes, sdcNone.trials, sdcEcc.estimate,
                sdcEcc.successes, sdcEcc.trials);
    if (!(sdcNone.estimate > sdcEcc.estimate)) {
        std::printf("FAIL: hardening the RAM did not reduce the SDC cross-section\n");
        return 1;
    }
    std::printf("OK: SEC-DED + scrubbing strictly reduced the RAM SDC cross-section\n");
    return 0;
}
