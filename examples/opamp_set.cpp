// Analog-only case study: single-event transients in a behavioral op-amp.
//
// Companion experiment to the PLL: an inverting amplifier built on the
// behavioral op-amp macro, with current saboteurs on its structural nodes
// (internal pole, virtual ground, output) and a parametric fault on the
// open-loop gain (the approach of the paper's reference [10]). Shows how the
// same unified flow ranks analog node sensitivity inside one block.

#include "core/campaign.hpp"
#include "duts/opamp_dut.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <cstdio>

using namespace gfi;

int main()
{
    duts::OpAmpDutConfig cfg;
    std::printf("Inverting amplifier: gain -%.1f, input %s @ %s, behavioral op-amp\n"
                "(dc gain %.0e, pole %s)\n\n",
                cfg.r2 / cfg.r1, formatSi(cfg.inputAmplitude, "V").c_str(),
                formatSi(cfg.inputHz, "Hz").c_str(), cfg.opamp.dcGain,
                formatSi(cfg.opamp.poleHz, "Hz").c_str());

    campaign::CampaignRunner runner(
        [cfg] { return std::make_unique<duts::OpAmpDutTestbench>(cfg); },
        campaign::Tolerance{5e-3});

    // --- SET sensitivity per structural node ---------------------------------
    auto pulse = std::make_shared<fault::TrapezoidPulse>(10e-3, 100e-12, 300e-12, 500e-12);
    TextTable t;
    t.setHeader({"injection node", "outcome", "peak |dVout|", "time outside 5 mV"});
    for (const char* sab : {"sab/pole", "sab/vinv", "sab/vout"}) {
        fault::CurrentPulseFault f{sab, 150e-6, pulse};
        const auto r = runner.runOne(fault::FaultSpec{f});
        t.addRow({sab, campaign::toString(r.outcome),
                  formatSi(r.maxAnalogDeviation, "V"),
                  formatSi(r.analogTimeOutsideTol, "s")});
    }
    std::printf("SET (3 pC current pulse) per structural node:\n");
    t.print();

    // --- parametric faults (reference [10] style) -------------------------------
    TextTable p;
    p.setHeader({"parametric fault", "outcome", "peak |dVout|"});
    for (double factor : {0.5, 0.1, 2e-4}) {
        fault::ParametricFault f{"amp/gain", factor, 0};
        const auto r = runner.runOne(fault::FaultSpec{f});
        p.addRow({"open-loop gain x " + formatDouble(factor),
                  campaign::toString(r.outcome), formatSi(r.maxAnalogDeviation, "V")});
    }
    std::printf("\nParametric (behavioral-model) faults:\n");
    p.print();

    std::printf("\nFeedback hides moderate gain loss (the closed loop re-centers), but a\n"
                "collapsed gain is a permanent failure — while SETs are sharp transients\n"
                "whose magnitude depends on WHERE the particle strikes. Both analyses\n"
                "come from the same golden run and classifier.\n");
    return 0;
}
