// benchdiff: compares two sets of BENCH_*.json artifacts and flags
// performance regressions beyond a relative threshold.
//
//   benchdiff [--threshold F] [--soft] <baseline> <current>
//
// <baseline> and <current> are each either one BENCH_*.json file or a
// directory; directories are matched by file name (every BENCH_*.json in the
// baseline must exist in the current set). The shared metadata block stamped
// by the bench emitters gates comparability: differing schema, tool, build
// type or configured worker count refuses the comparison (exit 1) instead of
// producing an apples-to-oranges verdict; differing git SHAs only note.
//
// Exit codes: 0 = no regression, 1 = usage/IO/incompatibility error,
// 2 = at least one regression (0 with --soft, which reports but never gates).

#include "obs/bench_compare.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

int usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--threshold FRACTION] [--soft] <baseline> <current>\n"
                 "  <baseline>/<current>: a BENCH_*.json file or a directory of them\n"
                 "  --threshold F   relative regression threshold (default 0.20 = 20%%)\n"
                 "  --soft          report regressions but always exit 0\n",
                 argv0);
    return 1;
}

std::string readFile(const fs::path& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("cannot read " + path.string());
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// BENCH_*.json files of @p p: the file itself, or the matching directory
/// entries sorted by name (deterministic report order).
std::vector<fs::path> benchFiles(const fs::path& p)
{
    std::vector<fs::path> files;
    if (fs::is_directory(p)) {
        for (const auto& entry : fs::directory_iterator(p)) {
            const std::string name = entry.path().filename().string();
            if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
                name.size() > 5 && name.substr(name.size() - 5) == ".json") {
                files.push_back(entry.path());
            }
        }
        std::sort(files.begin(), files.end());
    } else {
        files.push_back(p);
    }
    return files;
}

} // namespace

int main(int argc, char** argv)
{
    double threshold = 0.20;
    bool soft = false;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threshold") {
            if (i + 1 >= argc) {
                return usage(argv[0]);
            }
            threshold = std::strtod(argv[++i], nullptr);
            if (!(threshold > 0.0)) {
                std::fprintf(stderr, "benchdiff: bad threshold\n");
                return 1;
            }
        } else if (arg == "--soft") {
            soft = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2) {
        return usage(argv[0]);
    }

    try {
        const fs::path basePath = positional[0];
        const fs::path curPath = positional[1];
        const std::vector<fs::path> baseFiles = benchFiles(basePath);
        if (baseFiles.empty()) {
            std::fprintf(stderr, "benchdiff: no BENCH_*.json under %s\n",
                         basePath.string().c_str());
            return 1;
        }

        std::size_t regressions = 0;
        bool refused = false;
        for (const fs::path& baseFile : baseFiles) {
            fs::path curFile = curPath;
            if (fs::is_directory(curPath)) {
                curFile = curPath / baseFile.filename();
            }
            if (!fs::exists(curFile)) {
                std::fprintf(stderr, "benchdiff: %s has no counterpart in %s\n",
                             baseFile.filename().string().c_str(),
                             curPath.string().c_str());
                refused = true;
                continue;
            }
            const gfi::obs::BenchSet baseline = gfi::obs::parseBenchSet(
                readFile(baseFile), baseFile.filename().string());
            const gfi::obs::BenchSet current =
                gfi::obs::parseBenchSet(readFile(curFile), curFile.filename().string());
            const gfi::obs::BenchComparison cmp =
                gfi::obs::compareBenchSets(baseline, current, threshold);
            std::printf("== %s vs %s\n%s", baseFile.filename().string().c_str(),
                        curFile.filename().string().c_str(), cmp.table().c_str());
            refused = refused || cmp.refused();
            regressions += cmp.regressions();
        }

        if (refused) {
            std::fprintf(stderr, "benchdiff: comparison refused (incompatible or "
                                 "missing artifacts)\n");
            return 1;
        }
        if (regressions > 0) {
            std::printf("benchdiff: %zu metric%s regressed beyond %.0f%%%s\n", regressions,
                        regressions == 1 ? "" : "s", threshold * 100.0,
                        soft ? " (soft mode: not gating)" : "");
            return soft ? 0 : 2;
        }
        std::printf("benchdiff: no regressions beyond %.0f%%\n", threshold * 100.0);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "benchdiff: %s\n", e.what());
        return 1;
    }
}
