// Ablation: scrub interval vs uncorrectable-error accumulation in ECC RAM.
//
// SEC-DED corrects one upset per word; a second upset in the SAME word before
// it is scrubbed defeats the code. This bench bombards a 16-word ECC RAM with
// random single-bit upsets (deterministic seeded stream) and sweeps the
// scrubber period, counting words that accumulate an uncorrectable double
// error — the quantitative basis for choosing a scrub rate.

#include "digital/sequential.hpp"
#include "harden/scrubber.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <cstdio>

using namespace gfi;
using namespace gfi::digital;

namespace {

struct Result {
    int injected = 0;
    int repaired = 0;
    int uncorrectable = 0;
};

Result run(SimTime scrubPeriod, std::uint64_t seed, int upsets, SimTime window)
{
    Circuit c;
    auto& clk = c.logicSignal("clk", Logic::Zero);
    auto& we = c.logicSignal("we", Logic::Zero);
    Bus addr = c.bus("addr", 4, Logic::Zero);
    Bus wdata = c.bus("wdata", 8, Logic::Zero);
    Bus rdata = c.bus("rdata", 8, Logic::U);
    auto& ram = c.add<harden::EccRam>(c, "eram", clk, we, addr, wdata, rdata);
    harden::Scrubber* scrubber = nullptr;
    if (scrubPeriod > 0) {
        scrubber = &c.add<harden::Scrubber>(c, "scrub", ram, scrubPeriod);
    }

    // Random upsets, uniform over (word, codeword bit, time).
    Rng rng(seed);
    const int codeBits = harden::hammingCodewordBits(8);
    for (int i = 0; i < upsets; ++i) {
        const int word = static_cast<int>(rng.below(16));
        const int bit = static_cast<int>(rng.below(static_cast<std::uint64_t>(codeBits)));
        const SimTime t = rng.range(0, window);
        const auto& hook = c.instrumentation().hook("eram/w" + std::to_string(word));
        c.scheduler().scheduleAction(t, [&hook, bit] { hook.flipBit(bit); });
    }
    c.runUntil(window);

    Result r;
    r.injected = upsets;
    r.repaired = scrubber != nullptr ? scrubber->repairs() : 0;
    for (int w = 0; w < 16; ++w) {
        const auto d = harden::hammingDecode(ram.codeword(w), 8);
        r.uncorrectable += d.uncorrectable ? 1 : 0;
    }
    return r;
}

} // namespace

int main()
{
    std::printf("=== Ablation: ECC RAM scrub interval vs double-error accumulation ===\n\n");
    std::printf("16-word x 8-bit SEC-DED RAM, 64 random upsets over 1 ms, 8 seeds per\n"
                "point (deterministic). A word hit twice between scrubs is lost.\n\n");

    const int upsets = 64;
    const SimTime window = kMillisecond;
    const std::vector<SimTime> periods{0, 200 * kMicrosecond, 50 * kMicrosecond,
                                       10 * kMicrosecond, 2 * kMicrosecond};

    TextTable t;
    t.setHeader({"scrub period (per word)", "full-sweep time", "repairs (avg)",
                 "uncorrectable words (avg of 8 seeds)"});
    for (SimTime period : periods) {
        double repairs = 0.0;
        double bad = 0.0;
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            const Result r = run(period, seed * 7919, upsets, window);
            repairs += r.repaired;
            bad += r.uncorrectable;
        }
        t.addRow({period == 0 ? "no scrubbing" : formatTime(period),
                  period == 0 ? "-" : formatTime(16 * period),
                  formatDouble(repairs / 8.0, 3), formatDouble(bad / 8.0, 3)});
    }
    t.print();

    std::printf("\nExpected shape: without scrubbing, upsets accumulate and double hits\n"
                "defeat SEC-DED; as the sweep time drops below the mean inter-upset\n"
                "time per word, uncorrectable words approach zero.\n");
    return 0;
}
