// Reproduces paper Figure 5 / the golden behavior of Section 5.1: the
// hierarchical PLL block itself — 500 kHz reference in, 50 MHz generated
// clock out (20 ns period), with the structure Sequential PFD -> Charge Pump
// -> Low-pass Filter -> Analog VCO -> Digitizer (2.5 V) -> /100 Divider.
//
// Prints the lock-acquisition series (VCO control voltage and instantaneous
// output frequency over time) and verifies the operating point the paper
// states, plus the small-signal loop-filter characteristics via AC analysis.

#include "analog/ac.hpp"
#include "analog/passive.hpp"
#include "analog/sources.hpp"
#include "pll_bench_common.hpp"

using namespace gfi;
using namespace gfi::bench;

int main()
{
    pll::PllConfig cfg;
    cfg.duration = 150 * kMicrosecond;

    std::printf("=== Figure 5: the PLL case study (golden behavior) ===\n\n");
    std::printf("Hierarchy: PFD -> charge pump (%s) -> filter (R1=%s, C1=%s, C2=%s)\n"
                "           -> VCO (f0=%s, Kvco=%s/V) -> digitizer(%.1f V) -> /%d\n\n",
                formatSi(cfg.icp, "A").c_str(), formatSi(cfg.r1, "Ohm").c_str(),
                formatSi(cfg.c1, "F").c_str(), formatSi(cfg.c2, "F").c_str(),
                formatSi(cfg.f0, "Hz").c_str(), formatSi(cfg.kvco, "Hz").c_str(),
                cfg.digitizerThreshold, cfg.dividerN);

    pll::PllTestbench tb(cfg);
    tb.run();

    const auto& vctrl = tb.recorder().analogTrace(pll::names::kVctrl);
    const auto& fout = tb.recorder().digitalTrace(pll::names::kFout);
    const SimTime nominal = cfg.nominalOutputPeriod();

    // --- acquisition series ---------------------------------------------------
    std::printf("Lock acquisition (Vctrl and instantaneous output frequency):\n");
    TextTable t;
    t.setHeader({"time", "V_ctrl", "f_out (measured)"});
    const auto periods = trace::extractPeriods(fout);
    for (double us : {2.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0,
                      100.0, 120.0, 140.0}) {
        const double ts = us * 1e-6;
        // Find the output period at this time.
        double freq = 0.0;
        for (const auto& p : periods) {
            if (toSeconds(p.edge) >= ts) {
                freq = 1.0 / toSeconds(p.period);
                break;
            }
        }
        t.addRow({formatSi(ts, "s"), formatSi(vctrl.valueAt(ts), "V", 5),
                  formatSi(freq, "Hz", 5)});
    }
    t.print();

    // --- operating point ----------------------------------------------------------
    const SimTime tLock = pll::lockTime(fout, nominal);
    std::printf("\nOperating point (paper Section 5.1):\n");
    std::printf("  input frequency          : %s\n", formatSi(cfg.refFrequency, "Hz").c_str());
    std::printf("  generated clock period   : %s (nominal %s)\n",
                formatSi(trace::averagePeriod(fout, 100) * 1e-15, "s", 6).c_str(),
                formatTime(nominal).c_str());
    std::printf("  lock achieved at         : %s (before the paper's 0.17 ms injection)\n",
                formatTime(tLock).c_str());
    std::printf("  locked V_ctrl            : %s (expected (50 MHz - f0)/Kvco = 1 V)\n",
                formatSi(vctrl.samples.back().second, "V", 5).c_str());

    // --- loop-filter small-signal check (AC analysis) -------------------------------
    {
        analog::AnalogSystem filt;
        const auto in = filt.node("in");
        const auto vc = filt.node("vctrl");
        const auto mid = filt.node("mid");
        filt.add<analog::VoltageSource>(filt, "VIN", in, analog::kGround, 0.0);
        filt.add<analog::Resistor>(filt, "Rdrive", in, vc, 1e6);
        filt.add<analog::Resistor>(filt, "R1", vc, mid, cfg.r1);
        filt.add<analog::Capacitor>(filt, "C1", mid, analog::kGround, cfg.c1);
        filt.add<analog::Capacitor>(filt, "C2", vc, analog::kGround, cfg.c2);
        const auto sweep = analog::acSweep(filt, "VIN", 100.0, 10e6, 20);
        const double fz = 1.0 / (2.0 * M_PI * cfg.r1 * cfg.c1);
        const double fp = 1.0 / (2.0 * M_PI * cfg.r1 * cfg.c2 * cfg.c1 / (cfg.c1 + cfg.c2));
        std::printf("\nLoop filter small-signal sanity (AC sweep of Z(f) via 1 MOhm drive):\n");
        std::printf("  stabilizing zero at      : %s (1 / 2piR1C1)\n",
                    formatSi(fz, "Hz").c_str());
        std::printf("  ripple pole at           : %s (C2 takes over)\n",
                    formatSi(fp, "Hz").c_str());
        std::printf("  |Z| @ 30 kHz             : %s dB rel. 1 MOhm (plateau ~ R1)\n",
                    formatDouble(sweep.magnitudeDb(
                                     [&] {
                                         std::size_t i = 0;
                                         while (i < sweep.points().size() &&
                                                sweep.points()[i].hz < 30e3) {
                                             ++i;
                                         }
                                         return i;
                                     }(),
                                     vc),
                                 4)
                        .c_str());
    }
    return 0;
}
