// Bit-parallel batch backend speedup on a dense digital SEU sweep: 64+
// batch-eligible faults (bit flips on every state hook, stuck-ats on every
// interconnect saboteur) over the DigitalDut. The event-driven campaign
// simulates every fault in its own scalar run; the batch backend packs up to
// 63 fault variants plus the golden reference into one word-level simulation
// per group, so the speedup approaches the lane occupancy.
//
// Emits a single JSON object (machine-readable, consumed by CI) with the
// event-driven and batched campaign wall-clock times, the speedup, and
// whether the two campaigns produced byte-identical per-fault
// classifications — the backend's determinism contract (DESIGN.md §13).

#include "fault_list_common.hpp"
#include "pll_bench_common.hpp"

#include "core/report.hpp"
#include "duts/digital_dut.hpp"

#include <cstdio>
#include <functional>

using namespace gfi;
using namespace gfi::bench;

namespace {

// Long enough that the event-driven campaign takes tenths of a second: the
// measured speedup has to clear its gate on noisy shared CI runners.
constexpr SimTime kDuration = 24 * kMicrosecond;
constexpr std::size_t kMinFaults = 120; // >= 2 nearly-full 63-lane groups

struct CampaignResult {
    double wallSeconds = 0;
    std::string summary;
    std::string detail;
};

CampaignResult runCampaign(const std::vector<fault::FaultSpec>& faults, bool batch)
{
    campaign::CampaignRunner runner([] {
        duts::DigitalDutConfig cfg;
        cfg.duration = kDuration;
        return std::make_unique<duts::DigitalDutTestbench>(cfg);
    });
    runner.setRecordTiming(false); // keep reports byte-comparable across modes
    runner.setBatchBackend(batch);
    runner.setFaultCollapsing(false); // measure raw lane parallelism only
    CampaignResult out;
    campaign::CampaignReport report;
    out.wallSeconds = seconds([&] { report = runner.run(faults); });
    out.summary = report.summaryTable();
    out.detail = report.detailTable();
    return out;
}

} // namespace

int main()
{
    const std::vector<fault::FaultSpec> faults =
        digitalDutBatchFaults(kMinFaults, kDuration);
    std::fprintf(stderr, "perf_batch: %zu faults, duration %s\n", faults.size(),
                 formatTime(kDuration).c_str());

    const CampaignResult event = runCampaign(faults, false);
    std::fprintf(stderr, "  event-driven: %.3f s\n", event.wallSeconds);

    const CampaignResult batched = runCampaign(faults, true);
    std::fprintf(stderr, "  bit-parallel: %.3f s\n", batched.wallSeconds);

    const bool identical =
        batched.summary == event.summary && batched.detail == event.detail;
    const double speedup =
        batched.wallSeconds > 0 ? event.wallSeconds / batched.wallSeconds : 0.0;
    const std::size_t groups = (faults.size() + 62) / 63;

    char jsonLine[512];
    std::snprintf(jsonLine, sizeof jsonLine,
                  "\"benchmark\": \"perf_batch\", \"experiment\": "
                  "\"digital_dut_seu_sweep\", \"runs\": %zu, \"groups\": %zu, "
                  "\"event_s\": %.3f, \"batch_s\": %.3f, \"speedup\": %.2f, "
                  "\"identical\": %s",
                  faults.size(), groups, event.wallSeconds, batched.wallSeconds,
                  speedup, identical ? "true" : "false");
    const std::string doc = bench::benchJsonLine("perf_batch", jsonLine);
    std::fputs(doc.c_str(), stdout);
    if (!writeTextFile("BENCH_perf_batch.json", doc)) {
        std::fprintf(stderr, "warning: cannot write BENCH_perf_batch.json\n");
    }

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: batched per-fault classifications differ from event-driven\n");
        return 1;
    }
    if (speedup < 5.0) {
        std::fprintf(stderr, "FAIL: speedup %.2f below the 5x target\n", speedup);
        return 1;
    }
    return 0;
}
