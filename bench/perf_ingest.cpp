// External-netlist ingestion performance: parser throughput over a generated
// ISCAS-85-style corpus, plus the content-addressed golden store's
// cold-vs-warm campaign timing. The warm pass replays digest-verified
// verdicts from disk without simulating anything, so it must beat the cold
// campaign by at least 2x while reproducing the report byte for byte — the
// store's memoization contract (DESIGN.md §14).
//
// Emits a single JSON object (machine-readable, consumed by CI) with the
// parse throughput, both campaign times, the cache speedup and the
// byte-identity verdict.

#include "fault_list_common.hpp"
#include "pll_bench_common.hpp"

#include "core/report.hpp"
#include "io/golden_store.hpp"
#include "io/ingest.hpp"
#include "io/netlist.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

using namespace gfi;
using namespace gfi::bench;

namespace {

constexpr int kInputs = 8;
constexpr int kLayers = 9;
constexpr int kGatesPerLayer = 8;  // 72 gates, ~160 stuck-at faults
constexpr int kParseRepeats = 200; // parser throughput sample size

/// Deterministic layered benchmark netlist: every layer reads the previous
/// one, gate kinds cycle through the whole grammar.
std::string generateBenchText()
{
    std::ostringstream out;
    out << "# generated ingest benchmark circuit\n";
    for (int i = 0; i < kInputs; ++i) {
        out << "INPUT(i" << i << ")\n";
    }
    for (int g = 0; g < kGatesPerLayer; ++g) {
        out << "OUTPUT(L" << (kLayers - 1) << "_" << g << ")\n";
    }
    const char* kinds[] = {"AND", "OR", "XOR", "NAND", "NOR", "XNOR"};
    for (int l = 0; l < kLayers; ++l) {
        for (int g = 0; g < kGatesPerLayer; ++g) {
            const std::string a =
                l == 0 ? "i" + std::to_string(g % kInputs)
                       : "L" + std::to_string(l - 1) + "_" + std::to_string(g);
            const std::string b =
                l == 0 ? "i" + std::to_string((g + 3) % kInputs)
                       : "L" + std::to_string(l - 1) + "_" +
                             std::to_string((g + 1) % kGatesPerLayer);
            out << "L" << l << "_" << g << " = " << kinds[(l + g) % 6] << "(" << a
                << ", " << b << ")\n";
        }
    }
    return out.str();
}

} // namespace

int main()
{
    const std::string text = generateBenchText();

    // --- parser throughput ---------------------------------------------------
    io::NetlistDesc desc;
    const double parseSeconds = seconds([&] {
        for (int i = 0; i < kParseRepeats; ++i) {
            desc = io::parseNetlist(text, "perf_ingest.bench");
        }
    });
    const double bytesParsed = static_cast<double>(text.size()) * kParseRepeats;
    const double mbPerSecond =
        parseSeconds > 0 ? bytesParsed / parseSeconds / 1e6 : 0.0;
    std::fprintf(stderr, "perf_ingest: %zu gates, %d parses in %.3f s (%.1f MB/s)\n",
                 desc.gates.size(), kParseRepeats, parseSeconds, mbPerSecond);

    // --- cold campaign vs warm store replay ----------------------------------
    io::IngestConfig config;
    config.patternCount = 64;
    const io::IngestWorkload workload = io::makeWorkload(desc, config);
    std::fprintf(stderr, "  fault list: %zu stuck-ats over %zu nets\n",
                 workload.faults.size(), workload.netlist->nets().size());

    const std::string storeRoot = "perf_ingest_store";
    std::filesystem::remove_all(storeRoot);
    io::GoldenStore store(storeRoot);

    campaign::CampaignRunner coldRunner(workload.factory());
    io::CachedCampaign cold;
    const double coldSeconds =
        seconds([&] { cold = io::runCampaignCached(coldRunner, workload, store); });
    std::fprintf(stderr, "  cold campaign: %.3f s (%s)\n", coldSeconds,
                 cold.hit ? "unexpected hit" : "recorded");

    campaign::CampaignRunner warmRunner(workload.factory());
    io::CachedCampaign warm;
    const double warmSeconds =
        seconds([&] { warm = io::runCampaignCached(warmRunner, workload, store); });
    std::fprintf(stderr, "  warm replay:   %.3f s (%s)\n", warmSeconds,
                 warm.hit ? "hit" : "unexpected miss");

    const bool identical =
        campaign::reportToJson(warm.report) == campaign::reportToJson(cold.report) &&
        io::renderAnsText(workload, warm.report) == io::renderAnsText(workload, cold.report);
    const double speedup = warmSeconds > 0 ? coldSeconds / warmSeconds : 0.0;

    char jsonLine[512];
    std::snprintf(jsonLine, sizeof jsonLine,
                  "\"benchmark\": \"perf_ingest\", \"gates\": %zu, \"faults\": %zu, "
                  "\"parse_mb_s\": %.1f, \"cold_s\": %.3f, \"warm_s\": %.4f, "
                  "\"cache_speedup\": %.1f, \"hit\": %s, \"identical\": %s",
                  desc.gates.size(), workload.faults.size(), mbPerSecond, coldSeconds,
                  warmSeconds, speedup, warm.hit ? "true" : "false",
                  identical ? "true" : "false");
    const std::string doc = bench::benchJsonLine("perf_ingest", jsonLine);
    std::fputs(doc.c_str(), stdout);
    if (!writeTextFile("BENCH_perf_ingest.json", doc)) {
        std::fprintf(stderr, "warning: cannot write BENCH_perf_ingest.json\n");
    }

    if (!cold.hit && !warm.hit) {
        std::fprintf(stderr, "FAIL: second pass missed the store\n");
        return 1;
    }
    if (!identical) {
        std::fprintf(stderr, "FAIL: store replay is not byte-identical to the cold run\n");
        return 1;
    }
    if (speedup < 2.0) {
        std::fprintf(stderr, "FAIL: cache speedup %.2f below the 2x gate\n", speedup);
        return 1;
    }
    return 0;
}
