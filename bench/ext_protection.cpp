// Extension experiment: validating protection mechanisms by fault injection —
// the paper's second stated goal for early dependability analysis ("validate
// the efficiency of the implemented mechanisms").
//
// The same SEU campaign (single-bit flips on the storage element's internal
// state, plus adjacent double flips for the MBU trend) runs against four
// variants of the same design: unprotected, TMR, DWC and SEC-DED ECC. The
// table reports observable-error rates with Wilson 95 % intervals.

#include "core/faultlist.hpp"
#include "core/stats.hpp"
#include "duts/protected_dut.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <cstdio>

using namespace gfi;

namespace {

struct VariantResult {
    duts::Protection protection;
    campaign::Proportion singleEffect;
    campaign::Proportion doubleEffect;
    int targets = 0;
};

VariantResult runVariant(duts::Protection protection)
{
    duts::ProtectedDutConfig cfg;
    cfg.protection = protection;
    campaign::CampaignRunner runner(
        [cfg] { return std::make_unique<duts::ProtectedDutTestbench>(cfg); });

    const duts::ProtectedDutTestbench probe(cfg);
    const auto& registry = probe.sim().digital().instrumentation();

    // Mid-cycle injection times (avoid the capture edge itself).
    const std::vector<SimTime> times{
        kMicrosecond + 7 * kNanosecond, 2 * kMicrosecond + 11 * kNanosecond,
        3 * kMicrosecond + 13 * kNanosecond};

    // Single-bit flips over the storage targets only (the counter is shared
    // by all variants and would dilute the comparison).
    std::vector<fault::FaultSpec> singles;
    std::vector<fault::FaultSpec> doubles;
    int targets = 0;
    for (const std::string& name : probe.storageTargets()) {
        const auto& hook = registry.hook(name);
        targets += hook.width;
        for (int bit = 0; bit < hook.width; ++bit) {
            for (SimTime t : times) {
                singles.emplace_back(fault::BitFlipFault{name, bit, t});
            }
        }
        for (int bit = 0; bit + 1 < hook.width; ++bit) {
            for (SimTime t : times) {
                doubles.emplace_back(fault::DoubleBitFlipFault{name, bit, bit + 1, t});
            }
        }
    }

    const auto repSingle = runner.run(singles);
    const auto repDouble = runner.run(doubles);

    VariantResult result;
    result.protection = protection;
    result.targets = targets;
    result.singleEffect = campaign::outcomeRates(repSingle).effective;
    result.doubleEffect = campaign::outcomeRates(repDouble).effective;
    return result;
}

std::string cell(const campaign::Proportion& p)
{
    return formatDouble(100.0 * p.estimate, 4) + " %  [" + formatDouble(100.0 * p.low, 3) +
           ", " + formatDouble(100.0 * p.high, 3) + "]";
}

} // namespace

int main()
{
    std::printf("=== Extension: protection-mechanism validation by injection ===\n\n");
    std::printf("Design: counter -> storage element -> output, 50 MHz, SEUs injected\n"
                "into the storage element's INTERNAL state (copies / codeword).\n\n");

    std::vector<VariantResult> results;
    for (duts::Protection p : {duts::Protection::None, duts::Protection::Dwc,
                               duts::Protection::Tmr, duts::Protection::Ecc}) {
        results.push_back(runVariant(p));
    }

    TextTable t;
    t.setHeader({"variant", "state bits", "single-bit upset effect (95 % CI)",
                 "adjacent double-bit effect (95 % CI)"});
    for (const VariantResult& r : results) {
        t.addRow({duts::toString(r.protection), std::to_string(r.targets),
                  cell(r.singleEffect), cell(r.doubleEffect)});
    }
    t.print();

    std::printf(
        "\nExpected shape (and what the flow verifies):\n"
        "  * unprotected: every mid-cycle flip reaches the output -> ~100 %%;\n"
        "  * DWC: only primary-copy flips corrupt the data -> ~50 %% (detected);\n"
        "  * TMR: single flips fully masked -> ~0 %%; adjacent doubles land in ONE\n"
        "    copy, so they are masked too — TMR's weakness is multi-COPY upsets;\n"
        "  * SEC-DED: single flips corrected -> ~0 %%; adjacent doubles exceed the\n"
        "    correction capability and corrupt the read data (flagged as\n"
        "    uncorrectable) -> high double-bit effect.\n"
        "The flow quantifies mechanism efficiency before any silicon exists.\n");
    return 0;
}
