// Extension experiment: validating protection mechanisms by fault injection —
// the paper's second stated goal for early dependability analysis ("validate
// the efficiency of the implemented mechanisms").
//
// The same SEU campaign (single-bit flips on the storage element's internal
// state, plus adjacent double flips for the MBU trend) runs against four
// variants of the same design: unprotected, DWC, TMR and SEC-DED ECC. Each
// variant also observes its error flag, so the table separates "the wrong
// value reached the output" (data effect) from "the mechanism raised its
// flag" (detected) — DWC in particular detects far more than it corrupts.
// Rates carry Wilson 95 % intervals.

#include "core/faultlist.hpp"
#include "core/stats.hpp"
#include "duts/protected_dut.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

using namespace gfi;

namespace {

struct EffectRates {
    campaign::Proportion data;     ///< a dut/q[*] bit diverged from golden
    campaign::Proportion detected; ///< the mechanism's flag diverged (rose)
};

struct VariantResult {
    duts::Protection protection;
    EffectRates single;
    EffectRates doubled;
    int targets = 0;
};

bool anyDataError(const campaign::RunResult& r)
{
    return std::any_of(r.erredSignals.begin(), r.erredSignals.end(),
                       [](const std::string& s) { return s.rfind("dut/q[", 0) == 0; });
}

bool flagRaised(const campaign::RunResult& r, const std::string& flag)
{
    return !flag.empty() &&
           std::find(r.erredSignals.begin(), r.erredSignals.end(), flag) !=
               r.erredSignals.end();
}

EffectRates rates(const campaign::CampaignReport& rep, const std::string& flag)
{
    int data = 0;
    int detected = 0;
    for (const campaign::RunResult& r : rep.runs) {
        data += anyDataError(r) ? 1 : 0;
        detected += flagRaised(r, flag) ? 1 : 0;
    }
    const int n = static_cast<int>(rep.runs.size());
    return {campaign::wilsonInterval(data, n), campaign::wilsonInterval(detected, n)};
}

VariantResult runVariant(duts::Protection protection)
{
    duts::ProtectedDutConfig cfg;
    cfg.protection = protection;
    cfg.observeFlag = true;
    campaign::CampaignRunner runner(
        [cfg] { return std::make_unique<duts::ProtectedDutTestbench>(cfg); });

    const duts::ProtectedDutTestbench probe(cfg);
    const auto& registry = probe.sim().digital().instrumentation();

    // Mid-cycle injection times (avoid the capture edge itself).
    const std::vector<SimTime> times{
        kMicrosecond + 7 * kNanosecond, 2 * kMicrosecond + 11 * kNanosecond,
        3 * kMicrosecond + 13 * kNanosecond};

    // Single-bit flips over the storage targets only (the counter is shared
    // by all variants and would dilute the comparison).
    std::vector<fault::FaultSpec> singles;
    std::vector<fault::FaultSpec> doubles;
    int targets = 0;
    for (const std::string& name : probe.storageTargets()) {
        const auto& hook = registry.hook(name);
        targets += hook.width;
        for (int bit = 0; bit < hook.width; ++bit) {
            for (SimTime t : times) {
                singles.emplace_back(fault::BitFlipFault{name, bit, t});
            }
        }
        for (int bit = 0; bit + 1 < hook.width; ++bit) {
            for (SimTime t : times) {
                doubles.emplace_back(fault::DoubleBitFlipFault{name, bit, bit + 1, t});
            }
        }
    }

    const auto repSingle = runner.run(singles);
    const auto repDouble = runner.run(doubles);

    VariantResult result;
    result.protection = protection;
    result.targets = targets;
    result.single = rates(repSingle, probe.flagSignal());
    result.doubled = rates(repDouble, probe.flagSignal());
    return result;
}

std::string cell(const campaign::Proportion& p)
{
    return formatDouble(100.0 * p.estimate, 4) + " %  [" + formatDouble(100.0 * p.low, 3) +
           ", " + formatDouble(100.0 * p.high, 3) + "]";
}

std::string flagCell(duts::Protection p, const campaign::Proportion& rate)
{
    if (p == duts::Protection::None || p == duts::Protection::Tmr) {
        return "n/a (no flag)";
    }
    return cell(rate);
}

} // namespace

int main()
{
    std::printf("=== Extension: protection-mechanism validation by injection ===\n\n");
    std::printf("Design: counter -> storage element -> output, 50 MHz, SEUs injected\n"
                "into the storage element's INTERNAL state (copies / codeword).\n\n");

    std::vector<VariantResult> results;
    for (duts::Protection p : {duts::Protection::None, duts::Protection::Dwc,
                               duts::Protection::Tmr, duts::Protection::Ecc}) {
        results.push_back(runVariant(p));
    }

    TextTable t;
    t.setHeader({"variant", "state bits", "single: data effect (95 % CI)",
                 "single: detected", "double: data effect (95 % CI)",
                 "double: detected"});
    for (const VariantResult& r : results) {
        t.addRow({duts::toString(r.protection), std::to_string(r.targets),
                  cell(r.single.data), flagCell(r.protection, r.single.detected),
                  cell(r.doubled.data), flagCell(r.protection, r.doubled.detected)});
    }
    t.print();

    std::printf(
        "\nExpected shape (and what the flow verifies):\n"
        "  * unprotected: every mid-cycle flip reaches the output -> ~100 %% data\n"
        "    effect, nothing detected (no flag exists);\n"
        "  * DWC: only primary-copy flips corrupt the data -> ~50 %% data effect,\n"
        "    but EVERY copy flip raises the mismatch flag -> ~100 %% detected;\n"
        "  * TMR: single flips fully masked -> ~0 %%; adjacent doubles land in ONE\n"
        "    copy, so they are masked too — TMR's weakness is multi-COPY upsets;\n"
        "  * SEC-DED: single flips corrected silently -> ~0 %% both columns;\n"
        "    adjacent doubles exceed the correction capability, corrupt the read\n"
        "    data AND raise the uncorrectable flag -> both columns high.\n"
        "The flow quantifies mechanism efficiency before any silicon exists.\n");
    return 0;
}
