// Ablation: the analog comparison tolerance.
//
// Paper Section 4.1: "In case analog nodes are also monitored, it may be
// necessary to define an additional tolerance on the values, in order to
// avoid non significant error identifications."
//
// This bench runs three PLL faults ONCE each, then re-classifies the same
// traces under a sweep of analog tolerances (and the digital edge-jitter
// tolerance), showing how the verdict flips from "everything is an error"
// (tolerance too tight -> false positives from numerical noise) to
// "nothing is an error" (tolerance swallows the real disturbance).

#include "pll_bench_common.hpp"

using namespace gfi;
using namespace gfi::bench;

int main()
{
    pll::PllConfig cfg;
    cfg.duration = 170 * kMicrosecond;
    const double tInject = 130e-6;

    auto runner = makePllRunner(cfg);
    runner.runGolden();

    // Three faults of very different magnitude.
    auto big = std::make_shared<fault::TrapezoidPulse>(10e-3, 100e-12, 300e-12, 500e-12);
    auto small = std::make_shared<fault::TrapezoidPulse>(0.5e-3, 100e-12, 100e-12, 300e-12);
    std::vector<std::pair<const char*, fault::FaultSpec>> faults{
        {"10 mA / 500 ps pulse",
         fault::FaultSpec{fault::CurrentPulseFault{pll::names::kSabFilter, tInject, big}}},
        {"0.5 mA / 300 ps pulse",
         fault::FaultSpec{fault::CurrentPulseFault{pll::names::kSabFilter, tInject, small}}},
        {"PFD UP-flag SEU",
         fault::FaultSpec{fault::BitFlipFault{"pll/pfd", 0,
                                              130 * kMicrosecond + 300 * kNanosecond}}},
    };

    // Simulate once per fault; classification is then re-run per tolerance.
    std::vector<std::unique_ptr<fault::Testbench>> benches;
    for (auto& [name, f] : faults) {
        benches.push_back(runFaulty(runner, f));
    }

    std::printf("=== Ablation: analog tolerance in the result analysis ===\n\n");
    TextTable t;
    t.setHeader({"analog tolerance", "jitter tolerance", faults[0].first, faults[1].first,
                 faults[2].first});
    const std::vector<std::pair<double, SimTime>> tolerances{
        {0.1e-3, 0}, {1e-3, 10 * kPicosecond}, {5e-3, 200 * kPicosecond},
        {20e-3, 200 * kPicosecond}, {100e-3, kNanosecond}};
    for (const auto& [analogTol, jitter] : tolerances) {
        runner.setTolerance(campaign::Tolerance{analogTol, 0.0, jitter});
        std::vector<std::string> row{formatSi(analogTol, "V"), formatTime(jitter)};
        for (std::size_t i = 0; i < faults.size(); ++i) {
            row.push_back(
                campaign::toString(runner.classify(*benches[i], faults[i].second).outcome));
        }
        t.addRow(row);
    }
    t.print();

    std::printf("\nReading the table:\n"
                "  * with zero jitter tolerance the PFD SEU is misclassified as a hard\n"
                "    FAILURE: the femtosecond-level residual phase offset of the relocking\n"
                "    loop never compares exactly equal (a non-significant error, exactly\n"
                "    what the paper warns about);\n"
                "  * the 1 mV - 20 mV range classifies all three faults stably;\n"
                "  * at 100 mV the 0.5 mA strike disappears entirely, while the 10 mA\n"
                "    strike is still caught — but only through the digital clock trace,\n"
                "    the analog evidence having been tolerated away.\n");
    return 0;
}
