// Ablation: sensitivity to the exact analog injection time.
//
// Paper Section 4.1: "Specifying the injection times is more complex for
// analog blocks than for digital ones, since the exact injection time (and
// not only the injection cycle with respect to the system clock) may have a
// noticeable impact on the fault effects."
//
// Two sweeps on the PLL demonstrate this:
//  (a) macro sweep — inject the Figure 6 pulse at different loop states
//      (during acquisition vs after lock);
//  (b) micro sweep — inject at sub-reference-period offsets around a locked
//      charge-pump activity window.

#include "pll_bench_common.hpp"

using namespace gfi;
using namespace gfi::bench;

int main()
{
    pll::PllConfig cfg;
    cfg.duration = 170 * kMicrosecond;
    auto runner = makePllRunner(cfg);
    runner.runGolden();
    const auto& goldFout = runner.golden().recorder().digitalTrace(pll::names::kFout);

    auto pulse = std::make_shared<fault::TrapezoidPulse>(10e-3, 100e-12, 300e-12, 500e-12);
    auto measure = [&](double tInject) {
        fault::CurrentPulseFault f{pll::names::kSabFilter, tInject, pulse};
        auto tb = runFaulty(runner, fault::FaultSpec{f});
        const auto r = runner.classify(*tb, fault::FaultSpec{f});
        const auto pert =
            trace::compareClocks(goldFout, tb->recorder().digitalTrace(pll::names::kFout),
                                 1e-3, fromSeconds(tInject - 1e-6));
        return std::tuple{r, pert};
    };

    const SimTime nominal = cfg.nominalOutputPeriod();
    const SimTime goldenLock = pll::lockTime(goldFout, nominal);

    std::printf("=== Ablation (a): injection during acquisition vs locked ===\n\n");
    std::printf("Golden lock time: %s\n\n", formatTime(goldenLock).c_str());
    TextTable a;
    a.setHeader({"t_inject", "loop state", "outcome", "peak dV_ctrl", "perturbed cycles",
                 "lock time"});
    for (double t : {10e-6, 40e-6, 70e-6, 100e-6, 130e-6, 150e-6}) {
        fault::CurrentPulseFault f{pll::names::kSabFilter, t, pulse};
        auto tb = runFaulty(runner, fault::FaultSpec{f});
        const auto r = runner.classify(*tb, fault::FaultSpec{f});
        const auto& fout = tb->recorder().digitalTrace(pll::names::kFout);
        const auto pert = trace::compareClocks(goldFout, fout, 1e-3, fromSeconds(t - 1e-6));
        a.addRow({formatSi(t, "s"), t < toSeconds(goldenLock) ? "acquiring" : "locked",
                  campaign::toString(r.outcome), formatSi(r.maxAnalogDeviation, "V"),
                  std::to_string(pert.perturbedCycles),
                  formatTime(pll::lockTime(fout, nominal)).c_str()});
    }
    a.print();
    std::printf(
        "\nNote: for injections during acquisition the clock is away from nominal\n"
        "regardless of the fault, so the perturbed-cycle count mostly measures the\n"
        "remaining acquisition itself — the meaningful columns there are the lock\n"
        "time (barely changed: the strike is absorbed into acquisition) and the\n"
        "peak deviation (constant: it is set by the deposited charge over C2).\n"
        "After lock, the same charge visibly disturbs ~100+ otherwise-perfect\n"
        "cycles: WHEN the particle strikes changes the functional impact.\n");

    std::printf("\n=== Ablation (b): sub-period injection-time sweep (locked) ===\n\n");
    // The locked PFD emits narrow UP/DOWN pulses once per 2 us reference
    // period; injecting inside vs outside the charge-pump activity window
    // changes how the pulse charge interacts with the loop correction.
    TextTable b;
    b.setHeader({"t_inject", "offset in ref period", "peak dV_ctrl", "perturbed cycles"});
    const double base = 130e-6;
    for (double off : {0.0, 0.25e-6, 0.5e-6, 0.75e-6, 1.0e-6, 1.25e-6, 1.5e-6, 1.75e-6}) {
        const auto [r, pert] = measure(base + off);
        b.addRow({formatSi(base + off, "s"), formatSi(off, "s"),
                  formatSi(r.maxAnalogDeviation, "V"),
                  std::to_string(pert.perturbedCycles)});
    }
    b.print();
    std::printf("\nThe peak deviation is stable (charge dominates) but the perturbed-cycle\n"
                "count varies with the injection phase — digital-style 'cycle number'\n"
                "injection timing would miss this.\n");
    return 0;
}
