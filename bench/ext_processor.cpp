// Extension experiment: bit-flip injection in a processor-based architecture
// (the paper's reference [2], Cardarilli et al., IOLTW 2002).
//
// The DUT is the tiny 8-bit accumulator CPU running a counter loop that
// streams to an output port. Exhaustive SEU bit-flips are injected into the
// architectural registers — PC (control flow), ACC (datapath), the loop
// variable in RAM — and classified against the golden run, showing the very
// different failure signatures of control-flow vs datapath upsets.

#include "core/campaign.hpp"
#include "core/stats.hpp"
#include "duts/tiny_cpu.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <cstdio>

using namespace gfi;

int main()
{
    std::printf("=== Extension: SEUs in a processor-based architecture (ref [2]) ===\n\n");
    duts::TinyCpuConfig cfg;
    campaign::CampaignRunner runner(
        [cfg] { return std::make_unique<duts::TinyCpuTestbench>(cfg); });

    // Mid-cycle injection times spread over the run.
    std::vector<SimTime> times;
    for (int k = 1; k <= 5; ++k) {
        times.push_back(k * kMicrosecond + 7 * kNanosecond);
    }

    struct TargetRow {
        const char* target;
        const char* kind;
        int bits;
    };
    const std::vector<TargetRow> targets{
        {"cpu/core/pc", "control flow", 5},
        {"cpu/core/acc", "datapath", 8},
        {"cpu/ram/w16", "data memory (loop increment)", 8},
    };

    TextTable t;
    t.setHeader({"register", "kind", "runs", "silent", "transient", "failure"});
    for (const TargetRow& row : targets) {
        std::vector<fault::FaultSpec> faults;
        for (int bit = 0; bit < row.bits; ++bit) {
            for (SimTime time : times) {
                faults.emplace_back(fault::BitFlipFault{row.target, bit, time});
            }
        }
        const auto report = runner.run(faults);
        const auto h = report.histogram();
        auto count = [&](campaign::Outcome o) {
            const auto it = h.find(o);
            return it == h.end() ? 0 : it->second;
        };
        t.addRow({row.target, row.kind, std::to_string(report.runs.size()),
                  std::to_string(count(campaign::Outcome::Silent)),
                  std::to_string(count(campaign::Outcome::TransientError)),
                  std::to_string(count(campaign::Outcome::Failure))});
    }
    t.print();

    std::printf(
        "\nReading the table (the classic processor-injection signatures):\n"
        "  * PC flips derail control flow: the loop may skip OUT instructions or\n"
        "    re-enter the init code — mostly hard failures, some lucky re-syncs;\n"
        "  * ACC flips offset the counter: since ACC feeds itself, the offset\n"
        "    persists -> the output stream stays wrong (failure), though a flip\n"
        "    just before LDI/overwrite is masked (silent);\n"
        "  * RAM[16] (the increment) flips change the counting stride until the\n"
        "    init code rewrites it — never rewritten here, so failures dominate;\n"
        "    low bits flip the stride by 1, high bits by large steps.\n");
    return 0;
}
