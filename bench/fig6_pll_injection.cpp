// Reproduces paper Figure 6: "Fault injection results in the PLL block".
//
// Experiment (paper Section 5.2): the PLL (500 kHz in, 50 MHz out) is locked;
// at t = 0.17 ms a current pulse with RT = 100 ps, FT = 300 ps, PW = 500 ps,
// PA = 10 mA is injected by the saboteur at the input of the low-pass filter
// (the charge-pump output). The paper's finding: the pulse lasts 2.5 % of one
// generated clock period, yet the filter output (the VCO input) is disturbed
// for much longer, so the clock frequency is perturbed over a large number of
// consecutive cycles — not one.
//
// This bench prints the Figure 6 waveforms as series (nominal vs faulty VCO
// input voltage, generated clock period per cycle) and the headline numbers.

#include "pll_bench_common.hpp"

using namespace gfi;
using namespace gfi::bench;

int main()
{
    pll::PllConfig cfg;
    cfg.duration = 210 * kMicrosecond;
    const double tInject = 170e-6; // the paper's injection time, after lock

    std::printf("=== Figure 6: current pulse at the low-pass filter input ===\n\n");
    std::printf("PLL: %s reference -> %s output (divider /%d)\n",
                formatSi(cfg.refFrequency, "Hz").c_str(),
                formatSi(cfg.refFrequency * cfg.dividerN, "Hz").c_str(), cfg.dividerN);

    auto runner = makePllRunner(cfg);
    runner.runGolden();
    const auto& goldenRec = runner.golden().recorder();
    const SimTime nominal = cfg.nominalOutputPeriod();
    std::printf("Golden run: lock at %s; nominal output period %s\n\n",
                formatTime(pll::lockTime(goldenRec.digitalTrace(pll::names::kFout), nominal))
                    .c_str(),
                formatTime(nominal).c_str());

    fault::CurrentPulseFault f;
    f.saboteur = pll::names::kSabFilter;
    f.timeSeconds = tInject;
    f.shape = std::make_shared<fault::TrapezoidPulse>(10e-3, 100e-12, 300e-12, 500e-12);
    std::printf("Injecting %s at t = %s\n", f.shape->describe().c_str(),
                formatSi(tInject, "s").c_str());
    std::printf("Pulse width / clock period = %.1f %%\n\n",
                100.0 * f.shape->duration() / toSeconds(nominal));

    const auto result = runner.runOne(fault::FaultSpec{f});
    auto faulty = runFaulty(runner, fault::FaultSpec{f});

    // --- series 1: VCO input voltage around the injection --------------------
    std::printf("VCO input voltage (nominal vs with fault injection):\n");
    printVctrlSeries(goldenRec.analogTrace(pll::names::kVctrl),
                     faulty->recorder().analogTrace(pll::names::kVctrl), tInject,
                     {-2e-6, -0.5e-6, 0.3e-9, 0.6e-9, 10e-9, 100e-9, 0.5e-6, 1e-6, 2e-6,
                      4e-6, 6e-6, 8e-6, 10e-6, 15e-6, 20e-6, 30e-6});

    // --- series 2: generated clock period per cycle ---------------------------
    std::printf("\nGenerated clock (F_out) period around the injection:\n");
    const auto periods =
        trace::extractPeriods(faulty->recorder().digitalTrace(pll::names::kFout));
    TextTable t;
    t.setHeader({"cycle time", "period", "deviation from 20 ns"});
    SimTime lastPrinted = 0;
    for (const auto& p : periods) {
        const double rel =
            static_cast<double>(p.period - nominal) / static_cast<double>(nominal);
        const bool nearInjection =
            p.edge > fromSeconds(tInject) - 2 * nominal && p.edge < fromSeconds(tInject) + 100 * nominal;
        // Print a decimated view: every 8th cycle in the perturbed region.
        if (nearInjection && p.edge - lastPrinted >= 8 * nominal) {
            t.addRow({formatTime(p.edge), formatTime(p.period),
                      formatDouble(100.0 * rel, 3) + " %"});
            lastPrinted = p.edge;
        }
    }
    t.print();

    // --- headline numbers -----------------------------------------------------
    const auto pert = trace::compareClocks(goldenRec.digitalTrace(pll::names::kFout),
                                           faulty->recorder().digitalTrace(pll::names::kFout),
                                           1e-3, fromSeconds(tInject - 1e-6));
    std::printf("\nSummary (paper's qualitative findings):\n");
    std::printf("  pulse width                        : 500 ps (2.5 %% of the clock period)\n");
    std::printf("  VCO-input disturbance > 5 mV for   : %s  (>> pulse width)\n",
                formatSi(result.analogTimeOutsideTol, "s").c_str());
    std::printf("  max VCO-input deviation            : %s\n",
                formatSi(result.maxAnalogDeviation, "V").c_str());
    std::printf("  perturbed clock cycles (>0.1 %%)    : %d consecutive-region cycles\n",
                pert.perturbedCycles);
    std::printf("  perturbation span                  : %s\n",
                formatTime(pert.perturbationSpan()).c_str());
    std::printf("  max period deviation               : %.3f %%\n",
                100.0 * pert.maxRelDeviation);
    std::printf("  classification                     : %s (PLL relocks)\n",
                campaign::toString(result.outcome));
    return 0;
}
