// Reproduces paper Figure 7: the same injection performed with (a) the
// classical double-exponential current model and (b) the paper's proposed
// trapezoidal model, compared on the VCO input.
//
// Paper finding: "the results are very similar, although the numeric values
// are slightly different" — validating the cheaper model.

#include "pll_bench_common.hpp"

#include <cmath>

using namespace gfi;
using namespace gfi::bench;

int main()
{
    pll::PllConfig cfg;
    cfg.duration = 170 * kMicrosecond;
    const double tInject = 130e-6;

    std::printf("=== Figure 7: double-exponential vs proposed trapezoid model ===\n\n");

    // The paper's trapezoid, and the double-exponential fitted to the same
    // peak current and collected charge (Figure 1b procedure).
    auto trap = std::make_shared<fault::TrapezoidPulse>(10e-3, 100e-12, 300e-12, 500e-12);
    auto dexp = std::make_shared<fault::DoubleExpPulse>(fault::fitDoubleExp(*trap));
    std::printf("(a) %s\n    charge %s\n", dexp->describe().c_str(),
                formatSi(dexp->charge(), "C").c_str());
    std::printf("(b) %s\n    charge %s\n\n", trap->describe().c_str(),
                formatSi(trap->charge(), "C").c_str());

    auto runner = makePllRunner(cfg);
    runner.runGolden();

    fault::CurrentPulseFault fTrap{pll::names::kSabFilter, tInject, trap};
    fault::CurrentPulseFault fDexp{pll::names::kSabFilter, tInject, dexp};
    auto tbTrap = runFaulty(runner, fault::FaultSpec{fTrap});
    auto tbDexp = runFaulty(runner, fault::FaultSpec{fDexp});

    const auto& vTrap = tbTrap->recorder().analogTrace(pll::names::kVctrl);
    const auto& vDexp = tbDexp->recorder().analogTrace(pll::names::kVctrl);
    const auto& vGold = runner.golden().recorder().analogTrace(pll::names::kVctrl);

    // --- series: VCO input for both injections ------------------------------
    TextTable t;
    t.setHeader({"t - t_inj", "golden", "double-exp (a)", "trapezoid (b)", "|a - b|"});
    for (double dt : {-1e-6, 0.3e-9, 0.6e-9, 2e-9, 10e-9, 50e-9, 200e-9, 1e-6, 2e-6, 4e-6,
                      8e-6, 15e-6, 25e-6}) {
        const double time = tInject + dt;
        const double a = vDexp.valueAt(time);
        const double b = vTrap.valueAt(time);
        t.addRow({formatSi(dt, "s"), formatSi(vGold.valueAt(time), "V", 5),
                  formatSi(a, "V", 5), formatSi(b, "V", 5), formatSi(std::fabs(a - b), "V")});
    }
    t.print();

    // --- similarity metrics ----------------------------------------------------
    double maxDev = 0.0;
    double maxResp = 0.0;
    for (double time = tInject; time < tInject + 20e-6; time += 20e-9) {
        maxDev = std::max(maxDev, std::fabs(vTrap.valueAt(time) - vDexp.valueAt(time)));
        maxResp = std::max(maxResp, std::fabs(vTrap.valueAt(time) - vGold.valueAt(time)));
    }
    const auto rTrap = runner.classify(*tbTrap, fault::FaultSpec{fTrap});
    const auto rDexp = runner.classify(*tbDexp, fault::FaultSpec{fDexp});

    std::printf("\nSimilarity of the two models on the VCO input:\n");
    std::printf("  max |response| to either pulse      : %s\n",
                formatSi(maxResp, "V").c_str());
    std::printf("  max |difference| between the models : %s (%.1f %% of the response)\n",
                formatSi(maxDev, "V").c_str(), 100.0 * maxDev / maxResp);
    std::printf("  classification (double-exp)         : %s\n",
                campaign::toString(rDexp.outcome));
    std::printf("  classification (trapezoid)          : %s\n",
                campaign::toString(rTrap.outcome));
    std::printf("  peak deviation (double-exp)         : %s\n",
                formatSi(rDexp.maxAnalogDeviation, "V").c_str());
    std::printf("  peak deviation (trapezoid)          : %s\n",
                formatSi(rTrap.maxAnalogDeviation, "V").c_str());
    std::printf("\nPaper's finding reproduced: the two models give very similar results;\n"
                "the trapezoid is as usable as the double exponential at a fraction of\n"
                "the modeling complexity.\n");
    return 0;
}
