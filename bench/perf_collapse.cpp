// Static fault collapsing speedup on a Figure-8-style interconnect sweep:
// SET pulses and stuck-at faults over every saboteur of the chain DUT, whose
// six chained zero-delay saboteurs are provably equivalent injection sites.
// A full campaign simulates every fault; the collapsed campaign simulates
// one representative per equivalence class and statically expands the
// verdicts, so the speedup approaches runs / classes (the shrink factor).
//
// Emits a single JSON object (machine-readable, consumed by CI) with the
// full and collapsed campaign wall-clock times, the shrink factor, the
// speedup, and whether the two campaigns produced byte-identical per-fault
// classifications.

#include "fault_list_common.hpp"
#include "pll_bench_common.hpp"

#include "analyze/collapse.hpp"
#include "core/report.hpp"
#include "duts/chain_dut.hpp"

#include <cstdio>
#include <functional>

using namespace gfi;
using namespace gfi::bench;

namespace {

struct CampaignResult {
    double wallSeconds = 0;
    std::string detail;
};

// Long enough that the full campaign takes tenths of a second: the measured
// speedup has to clear its gate on noisy shared CI runners.
constexpr SimTime kDuration = 40 * kMicrosecond;

CampaignResult runCampaign(const std::vector<fault::FaultSpec>& faults, bool collapse)
{
    campaign::CampaignRunner runner([] {
        duts::ChainDutConfig cfg;
        cfg.duration = kDuration;
        return std::make_unique<duts::ChainDutTestbench>(cfg);
    });
    runner.setRecordTiming(false); // keep reports byte-comparable across modes
    runner.setFaultCollapsing(collapse);
    CampaignResult out;
    campaign::CampaignReport report;
    out.wallSeconds = seconds([&] { report = runner.run(faults); });
    out.detail = report.detailTable();
    return out;
}

} // namespace

int main()
{
    // The paper's SET parameter sweep, restated for the digital chain (shared
    // with the other perf tools via fault_list_common.hpp).
    const std::vector<fault::FaultSpec> faults = chainSetSweepFaults();

    duts::ChainDutConfig probeCfg;
    probeCfg.duration = kDuration;
    duts::ChainDutTestbench tb(probeCfg);
    const analyze::CollapsePlan plan = analyze::collapseFaults(tb, faults);
    const double shrink = plan.classes() > 0
                              ? static_cast<double>(faults.size()) /
                                    static_cast<double>(plan.classes())
                              : 0.0;
    std::fprintf(stderr, "perf_collapse: %zu faults -> %zu classes (shrink %.2fx)\n",
                 faults.size(), plan.classes(), shrink);

    const CampaignResult full = runCampaign(faults, false);
    std::fprintf(stderr, "  full campaign:      %.3f s\n", full.wallSeconds);

    const CampaignResult collapsed = runCampaign(faults, true);
    std::fprintf(stderr, "  collapsed campaign: %.3f s\n", collapsed.wallSeconds);

    const bool identical = collapsed.detail == full.detail;
    const double speedup =
        collapsed.wallSeconds > 0 ? full.wallSeconds / collapsed.wallSeconds : 0.0;

    char jsonLine[512];
    std::snprintf(jsonLine, sizeof jsonLine,
                  "\"benchmark\": \"perf_collapse\", \"experiment\": "
                  "\"chain_set_sweep\", \"runs\": %zu, \"classes\": %zu, "
                  "\"shrink\": %.2f, \"full_s\": %.3f, \"collapsed_s\": %.3f, "
                  "\"speedup\": %.2f, \"identical\": %s",
                  faults.size(), plan.classes(), shrink, full.wallSeconds,
                  collapsed.wallSeconds, speedup, identical ? "true" : "false");
    const std::string doc = bench::benchJsonLine("perf_collapse", jsonLine);
    std::fputs(doc.c_str(), stdout);
    if (!writeTextFile("BENCH_perf_collapse.json", doc)) {
        std::fprintf(stderr, "warning: cannot write BENCH_perf_collapse.json\n");
    }

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: collapsed per-fault classifications differ from full\n");
        return 1;
    }
    if (speedup < 1.5) {
        std::fprintf(stderr, "FAIL: speedup %.2f below the 1.5x target\n", speedup);
        return 1;
    }
    return 0;
}
