// Extension experiment (paper Section 6 / reference [9]): ADC sensitivity.
//
// The paper's conclusion proposes applying the unified flow to blocks with
// both analog and digital circuitry, "e.g. analog to digital converters",
// and its reference [9] (Singh & Koren, DFT'01) found — at transistor level —
// that the analog part of a converter can be more sensitive than the digital
// part. This bench performs that comparison at the behavioral level with the
// unified flow: a charge-threshold sweep on analog nodes vs digital state of
// the SAR ADC, plus a per-tap sensitivity map of the flash ADC.

#include "adc/flash.hpp"
#include "adc/sar.hpp"
#include "core/campaign.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <cstdio>

using namespace gfi;

namespace {

/// Smallest pulse charge (out of a geometric sweep) that produces a
/// non-silent outcome, or -1 if even the largest pulse is silent.
double chargeThreshold(campaign::CampaignRunner& runner, const std::string& saboteur,
                       double tInject)
{
    for (double pa : {0.05e-3, 0.2e-3, 0.8e-3, 3.2e-3, 12.8e-3}) {
        auto shape = std::make_shared<fault::TrapezoidPulse>(pa, 500e-12, 500e-12, 1e-9);
        const auto r = runner.runOne(
            fault::FaultSpec{fault::CurrentPulseFault{saboteur, tInject, shape}});
        if (r.outcome != campaign::Outcome::Silent) {
            return shape->charge();
        }
    }
    return -1.0;
}

std::string chargeStr(double q)
{
    return q < 0 ? "> 6.4 pC (robust)" : formatSi(q, "C");
}

} // namespace

int main()
{
    std::printf("=== Extension: ADC sensitivity (paper's future work, ref [9]) ===\n\n");

    // ---------------- SAR ADC: charge threshold per analog node ----------------
    {
        adc::SarConfig cfg;
        campaign::CampaignRunner runner(
            [cfg] { return std::make_unique<adc::SarAdcTestbench>(cfg); },
            campaign::Tolerance{20e-3});
        const double mid = toSeconds(cfg.levelHold) + 2.6e-6; // mid-conversion

        std::printf("SAR ADC — smallest disturbing charge per target (mid-conversion):\n");
        TextTable t;
        t.setHeader({"part", "target", "upset threshold"});
        t.addRow({"analog", "sab/dac_out", chargeStr(chargeThreshold(runner, "sab/dac_out", mid))});
        t.addRow({"analog", "sab/vin", chargeStr(chargeThreshold(runner, "sab/vin", mid))});

        // Digital part: a bit flip is binary (charge-independent once above
        // the cell's critical charge) — count how many of the state bits
        // upset the conversion.
        int nonSilent = 0;
        int total = 0;
        for (int bit = 0; bit < cfg.bits; ++bit) {
            const auto r = runner.runOne(fault::FaultSpec{
                fault::BitFlipFault{"adc/sar/code", bit, fromSeconds(mid)}});
            ++total;
            nonSilent += r.outcome != campaign::Outcome::Silent ? 1 : 0;
        }
        t.addRow({"digital", "adc/sar/code (bit-flips)",
                  std::to_string(nonSilent) + "/" + std::to_string(total) + " bits upset"});
        t.print();
        std::printf("\n");
    }

    // ---------------- flash ADC: per-tap sensitivity map --------------------------
    {
        adc::FlashConfig cfg;
        campaign::CampaignRunner runner(
            [cfg] { return std::make_unique<adc::FlashAdcTestbench>(cfg); },
            campaign::Tolerance{20e-3});
        const adc::FlashAdcTestbench probe(cfg);

        std::printf("Flash ADC — per-ladder-tap sensitivity (2.5 pC, sample-edge aligned):\n");
        TextTable t;
        t.setHeader({"target", "injections", "non-silent"});
        auto charge = std::make_shared<fault::TrapezoidPulse>(5e-3, 500e-12, 500e-12, 1e-9);
        const std::vector<double> times{4e-6 - 0.5e-9, 8e-6 - 0.5e-9, 12e-6 - 0.5e-9,
                                        16e-6 - 0.5e-9};
        int analogNonSilent = 0;
        int analogTotal = 0;
        for (const std::string& sab : probe.tapSaboteurs()) {
            int nonSilent = 0;
            for (double t0 : times) {
                const auto r = runner.runOne(
                    fault::FaultSpec{fault::CurrentPulseFault{sab, t0, charge}});
                nonSilent += r.outcome != campaign::Outcome::Silent ? 1 : 0;
            }
            analogNonSilent += nonSilent;
            analogTotal += static_cast<int>(times.size());
            t.addRow({sab, std::to_string(times.size()), std::to_string(nonSilent)});
        }
        int digitalNonSilent = 0;
        int digitalTotal = 0;
        for (int bit = 0; bit < cfg.bits; ++bit) {
            for (double t0 : times) {
                const auto r = runner.runOne(fault::FaultSpec{
                    fault::BitFlipFault{"adc/code_reg", bit, fromSeconds(t0)}});
                ++digitalTotal;
                digitalNonSilent += r.outcome != campaign::Outcome::Silent ? 1 : 0;
            }
        }
        t.addRow({"adc/code_reg (digital)", std::to_string(digitalTotal),
                  std::to_string(digitalNonSilent)});
        t.print();

        std::printf("\nAnalog part: %d/%d upsets; digital part: %d/%d upsets.\n",
                    analogNonSilent, analogTotal, digitalNonSilent, digitalTotal);
        std::printf("A register flip is always captured, but the analog ladder offers %dx\n"
                    "more strike area (7 taps vs 3 register bits) — weighting sensitivity\n"
                    "by target count reproduces ref [9]'s conclusion that the analog part\n"
                    "dominates the converter's cross-section.\n",
                    7 / 3);
    }
    return 0;
}
