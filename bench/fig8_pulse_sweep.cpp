// Reproduces paper Figure 8: "VCO input signal for several sets of
// parameters (PA, RT, FT, PW) defining the current pulse injected on the
// filter input".
//
// Parameter sets (exactly the paper's): (2 mA, 100, 100, 300 ps),
// (8 mA, 100, 100, 300 ps), (10 mA, 40, 40, 120 ps), (10 mA, 180, 180, 540 ps).
// Paper finding: "the amplitude and length of the pulse have clearly a
// cumulative effect" — the disturbance grows with both PA and PW (i.e. with
// the collected charge), which lets a designer map pulse parameters back to
// the particle population the circuit is sensitive to.

#include "pll_bench_common.hpp"

using namespace gfi;
using namespace gfi::bench;

int main()
{
    pll::PllConfig cfg;
    cfg.duration = 170 * kMicrosecond;
    const double tInject = 130e-6;

    struct ParamSet {
        double pa, rt, ft, pw;
    };
    const std::vector<ParamSet> sets{
        {2e-3, 100e-12, 100e-12, 300e-12},
        {8e-3, 100e-12, 100e-12, 300e-12},
        {10e-3, 40e-12, 40e-12, 120e-12},
        {10e-3, 180e-12, 180e-12, 540e-12},
    };

    std::printf("=== Figure 8: pulse-parameter sweep on the filter input ===\n\n");
    auto runner = makePllRunner(cfg);
    runner.runGolden();
    const auto& vGold = runner.golden().recorder().analogTrace(pll::names::kVctrl);
    const auto& goldFout = runner.golden().recorder().digitalTrace(pll::names::kFout);

    struct Observed {
        double charge;
        campaign::RunResult result;
        trace::ClockPerturbation clock;
        std::unique_ptr<fault::Testbench> tb;
    };
    std::vector<Observed> observed;

    for (const ParamSet& p : sets) {
        auto shape = std::make_shared<fault::TrapezoidPulse>(p.pa, p.rt, p.ft, p.pw);
        fault::CurrentPulseFault f{pll::names::kSabFilter, tInject, shape};
        auto tb = runFaulty(runner, fault::FaultSpec{f});
        Observed obs;
        obs.charge = shape->charge();
        obs.result = runner.classify(*tb, fault::FaultSpec{f});
        obs.clock = trace::compareClocks(goldFout,
                                         tb->recorder().digitalTrace(pll::names::kFout),
                                         1e-3, fromSeconds(tInject - 1e-6));
        obs.tb = std::move(tb);
        observed.push_back(std::move(obs));
    }

    // --- per-set summary (the figure's four panes) -----------------------------
    TextTable t;
    t.setHeader({"(PA, RT, FT, PW)", "charge", "peak dV_ctrl", "disturb > 5 mV",
                 "perturbed cycles", "max period dev"});
    for (std::size_t i = 0; i < sets.size(); ++i) {
        const ParamSet& p = sets[i];
        const Observed& o = observed[i];
        t.addRow({"(" + formatSi(p.pa, "A") + ", " + formatSi(p.rt, "s") + ", " +
                      formatSi(p.ft, "s") + ", " + formatSi(p.pw, "s") + ")",
                  formatSi(o.charge, "C"), formatSi(o.result.maxAnalogDeviation, "V"),
                  formatSi(o.result.analogTimeOutsideTol, "s"),
                  std::to_string(o.clock.perturbedCycles),
                  formatDouble(100.0 * o.clock.maxRelDeviation, 3) + " %"});
    }
    t.print();

    // --- waveform series for all four sets --------------------------------------
    std::printf("\nVCO input deviation from golden (V), per parameter set:\n");
    TextTable w;
    w.setHeader({"t - t_inj", "2mA/300ps", "8mA/300ps", "10mA/120ps", "10mA/540ps"});
    for (double dt : {1e-9, 10e-9, 100e-9, 0.5e-6, 1e-6, 2e-6, 4e-6, 8e-6, 15e-6}) {
        std::vector<std::string> row{formatSi(dt, "s")};
        for (const Observed& o : observed) {
            const auto& v = o.tb->recorder().analogTrace(pll::names::kVctrl);
            row.push_back(formatSi(v.valueAt(tInject + dt) - vGold.valueAt(tInject + dt),
                                   "V"));
        }
        w.addRow(row);
    }
    w.print();

    // --- the cumulative-effect check ----------------------------------------------
    std::printf("\nCumulative effect (paper's finding): peak disturbance must grow with\n"
                "amplitude at fixed width, and with width at fixed amplitude:\n");
    const bool ampEffect =
        observed[1].result.maxAnalogDeviation > observed[0].result.maxAnalogDeviation;
    const bool lenEffect =
        observed[3].result.maxAnalogDeviation > observed[2].result.maxAnalogDeviation;
    std::printf("  8 mA > 2 mA at 300 ps   : %s (%s vs %s)\n", ampEffect ? "yes" : "NO",
                formatSi(observed[1].result.maxAnalogDeviation, "V").c_str(),
                formatSi(observed[0].result.maxAnalogDeviation, "V").c_str());
    std::printf("  540 ps > 120 ps at 10 mA: %s (%s vs %s)\n", lenEffect ? "yes" : "NO",
                formatSi(observed[3].result.maxAnalogDeviation, "V").c_str(),
                formatSi(observed[2].result.maxAnalogDeviation, "V").c_str());
    return ampEffect && lenEffect ? 0 : 1;
}
