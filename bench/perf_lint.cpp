// Static-analysis cost/benefit benchmarks: what one lint pass of the PLL
// testbench costs (it runs once per campaign), and what the preflight saves
// by rejecting a campaign of known-bad faults in O(1) testbench builds
// instead of one contained simulation per fault.

#include "core/campaign.hpp"
#include "duts/digital_dut.hpp"
#include "lint/lint.hpp"
#include "pll/pll.hpp"

#include "pll_bench_common.hpp"

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

using namespace gfi;

namespace {

// --- lint cost --------------------------------------------------------------

void BM_LintPllTestbench(benchmark::State& state)
{
    // Full static pass (digital netlist + analog topology) over the PLL.
    // Building the testbench is part of the loop on purpose: that is what
    // the campaign preflight pays, golden elaboration included.
    for (auto _ : state) {
        pll::PllTestbench tb;
        const lint::Report rep = lint::lintTestbench(tb);
        benchmark::DoNotOptimize(rep.size());
    }
}
BENCHMARK(BM_LintPllTestbench)->Unit(benchmark::kMillisecond);

void BM_LintOnlyPll(benchmark::State& state)
{
    // The lint pass alone on a pre-built testbench: the marginal cost of
    // re-linting (e.g. per fault-list variant in a sweep).
    pll::PllTestbench tb;
    for (auto _ : state) {
        const lint::Report rep = lint::lintTestbench(tb);
        benchmark::DoNotOptimize(rep.size());
    }
}
BENCHMARK(BM_LintOnlyPll)->Unit(benchmark::kMicrosecond);

// --- preflight benefit ------------------------------------------------------

std::vector<fault::FaultSpec> badFaults(int n)
{
    std::vector<fault::FaultSpec> faults;
    faults.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        faults.push_back(
            fault::BitFlipFault{"typo/reg" + std::to_string(i), 0, kMicrosecond});
    }
    return faults;
}

void BM_PreflightRejects100BadFaults(benchmark::State& state)
{
    // Campaign with 100 unknown targets, preflight on: one testbench build,
    // one report, zero simulations.
    const std::vector<fault::FaultSpec> faults = badFaults(100);
    for (auto _ : state) {
        campaign::CampaignRunner runner(
            [] { return std::make_unique<duts::DigitalDutTestbench>(); });
        try {
            runner.run(faults);
        } catch (const lint::PreflightError& e) {
            benchmark::DoNotOptimize(e.report().size());
        }
    }
}
BENCHMARK(BM_PreflightRejects100BadFaults)->Unit(benchmark::kMillisecond);

void BM_NoPreflight100BadFaultsSimulated(benchmark::State& state)
{
    // The same campaign with preflight off: every bad fault costs a full
    // contained golden-vs-faulty run before classifying as SimError. The
    // ratio against BM_PreflightRejects100BadFaults is the savings.
    const std::vector<fault::FaultSpec> faults = badFaults(100);
    for (auto _ : state) {
        campaign::CampaignRunner runner(
            [] { return std::make_unique<duts::DigitalDutTestbench>(); });
        runner.setPreflight(false);
        const campaign::CampaignReport rep = runner.run(faults);
        benchmark::DoNotOptimize(rep.runs.size());
    }
}
BENCHMARK(BM_NoPreflight100BadFaultsSimulated)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    return gfi::bench::runBenchmarksToJson(argc, argv, "perf_lint");
}
