// Extension experiment: behavioral vs structural (gate-level) model
// comparison — the paper's conclusion plans exactly this: "Comparisons
// between results obtained on behavioral models and results obtained on
// lower level descriptions are also planned."
//
// The PLL is built twice: once with the behavioral PFD (the paper's level)
// and once with a gate-level PFD (2 DFFs + AND reset + inverter, per-gate
// delays, per-flop SEU hooks). Both versions run (a) the golden lock,
// (b) the Figure 6 analog injection and (c) SEUs in the PFD state, and the
// table shows how well the early behavioral analysis predicts the
// lower-level results.

#include "pll_bench_common.hpp"

using namespace gfi;
using namespace gfi::bench;

namespace {

struct LevelResult {
    SimTime lockTime = -1;
    double lockedVctrl = 0.0;
    campaign::RunResult analogInjection;
    int analogPerturbedCycles = 0;
    campaign::RunResult upSeu;
    campaign::RunResult downSeu;
};

LevelResult runLevel(bool structural)
{
    pll::PllConfig cfg;
    cfg.duration = 170 * kMicrosecond;
    cfg.structuralPfd = structural;
    const double tAna = 130e-6;
    const SimTime tDig = 130 * kMicrosecond + 300 * kNanosecond;

    auto runner = makePllRunner(cfg);
    runner.runGolden();

    LevelResult r;
    const auto& goldenFout = runner.golden().recorder().digitalTrace(pll::names::kFout);
    r.lockTime = pll::lockTime(goldenFout, cfg.nominalOutputPeriod());
    r.lockedVctrl =
        runner.golden().recorder().analogTrace(pll::names::kVctrl).samples.back().second;

    // (b) the Figure 6 analog injection.
    fault::CurrentPulseFault pulse{
        pll::names::kSabFilter, tAna,
        std::make_shared<fault::TrapezoidPulse>(10e-3, 100e-12, 300e-12, 500e-12)};
    auto tb = runFaulty(runner, fault::FaultSpec{pulse});
    r.analogInjection = runner.classify(*tb, fault::FaultSpec{pulse});
    r.analogPerturbedCycles =
        trace::compareClocks(goldenFout, tb->recorder().digitalTrace(pll::names::kFout),
                             1e-3, fromSeconds(tAna - 1e-6))
            .perturbedCycles;

    // (c) SEUs in the PFD state: same *functional* fault, expressed at the
    // respective abstraction level.
    const std::string upTarget = structural ? "pll/pfd/ff_up" : "pll/pfd";
    const std::string downTarget = structural ? "pll/pfd/ff_down" : "pll/pfd";
    r.upSeu = runner.runOne(
        fault::FaultSpec{fault::BitFlipFault{upTarget, 0, tDig}});
    r.downSeu = runner.runOne(
        fault::FaultSpec{fault::BitFlipFault{downTarget, structural ? 0 : 1, tDig}});
    return r;
}

} // namespace

int main()
{
    std::printf("=== Extension: behavioral vs gate-level PFD (multi-level comparison) ===\n\n");

    const LevelResult behavioral = runLevel(false);
    const LevelResult structural = runLevel(true);

    TextTable t;
    t.setHeader({"observable", "behavioral PFD", "structural PFD"});
    t.addRow({"lock time", formatTime(behavioral.lockTime), formatTime(structural.lockTime)});
    t.addRow({"locked Vctrl", formatSi(behavioral.lockedVctrl, "V", 5),
              formatSi(structural.lockedVctrl, "V", 5)});
    t.addSeparator();
    t.addRow({"Fig.6 pulse: outcome", campaign::toString(behavioral.analogInjection.outcome),
              campaign::toString(structural.analogInjection.outcome)});
    t.addRow({"Fig.6 pulse: peak dVctrl",
              formatSi(behavioral.analogInjection.maxAnalogDeviation, "V"),
              formatSi(structural.analogInjection.maxAnalogDeviation, "V")});
    t.addRow({"Fig.6 pulse: perturbed cycles",
              std::to_string(behavioral.analogPerturbedCycles),
              std::to_string(structural.analogPerturbedCycles)});
    t.addSeparator();
    t.addRow({"UP-flag SEU: outcome", campaign::toString(behavioral.upSeu.outcome),
              campaign::toString(structural.upSeu.outcome)});
    t.addRow({"UP-flag SEU: peak dVctrl",
              formatSi(behavioral.upSeu.maxAnalogDeviation, "V"),
              formatSi(structural.upSeu.maxAnalogDeviation, "V")});
    t.addRow({"DOWN-flag SEU: outcome", campaign::toString(behavioral.downSeu.outcome),
              campaign::toString(structural.downSeu.outcome)});
    t.addRow({"DOWN-flag SEU: peak dVctrl",
              formatSi(behavioral.downSeu.maxAnalogDeviation, "V"),
              formatSi(structural.downSeu.maxAnalogDeviation, "V")});
    t.print();

    std::printf(
        "\nThe macroscopic dependability verdicts (outcome class, disturbance\n"
        "magnitude, perturbation length) agree across levels, while the\n"
        "structural model adds gate-delay detail (slightly different static\n"
        "phase offset and SEU pulse widths) — supporting the paper's premise\n"
        "that the analysis can start at the behavioral level and be refined\n"
        "down the design flow.\n");
    return 0;
}
