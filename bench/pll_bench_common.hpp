#pragma once
// Shared helpers for the PLL figure-reproduction benches and the perf_*
// engineering benchmarks (machine-readable BENCH_<tool>.json output).

#include "core/campaign.hpp"
#include "pll/pll.hpp"
#include "trace/metrics.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <ctime>
#include <memory>

// Build provenance, injected by bench/CMakeLists.txt; the fallbacks keep the
// header compilable from other targets.
#ifndef GFI_GIT_SHA
#define GFI_GIT_SHA "unknown"
#endif
#ifndef GFI_BUILD_TYPE
#define GFI_BUILD_TYPE "unknown"
#endif

namespace gfi::bench {

/// Standard experiment tolerances for the PLL benches: 5 mV on the VCO
/// control node, 1 % of the output period (200 ps) of clock-edge jitter.
inline campaign::Tolerance pllTolerance()
{
    return campaign::Tolerance{5e-3, 0.0, 200 * kPicosecond};
}

/// Campaign runner over PllTestbench with the given config.
inline campaign::CampaignRunner makePllRunner(const pll::PllConfig& cfg)
{
    return campaign::CampaignRunner(
        [cfg] { return std::make_unique<pll::PllTestbench>(cfg); }, pllTolerance());
}

/// Runs one armed faulty testbench to completion and returns it.
inline std::unique_ptr<fault::Testbench> runFaulty(campaign::CampaignRunner& runner,
                                                   const fault::FaultSpec& f)
{
    auto tb = runner.makeTestbench();
    fault::armFault(*tb, f);
    tb->run();
    return tb;
}

// --- machine-readable bench output ------------------------------------------

/// The shared metadata block stamped into every BENCH_*.json artifact, so
/// regression tooling (tools/benchdiff) can refuse apples-to-oranges
/// comparisons: schema version, emitting tool, source revision, build type,
/// configured worker count (0 = auto — deliberately NOT the resolved thread
/// count, so artifacts compare across machines with different core counts)
/// and emission timestamp (informational only).
inline std::string benchMetaJson(const std::string& tool, unsigned workers = 0)
{
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm tm{}; gmtime_r(&now, &tm) != nullptr) {
        std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &tm);
    }
    std::string meta = "{\"schema\": 1";
    meta += ", \"tool\": \"" + tool + "\"";
    meta += ", \"git_sha\": \"" GFI_GIT_SHA "\"";
    meta += ", \"build_type\": \"" GFI_BUILD_TYPE "\"";
    meta += ", \"workers\": " + std::to_string(workers);
    meta += ", \"timestamp\": \"" + std::string(stamp) + "\"";
    meta += "}";
    return meta;
}

/// Composes a one-line BENCH_<tool>.json document from the shared meta block
/// plus the tool's own payload fields (braces stripped, "benchmark" first).
inline std::string benchJsonLine(const std::string& tool, const std::string& payloadFields,
                                 unsigned workers = 0)
{
    return "{\"meta\": " + benchMetaJson(tool, workers) + ", " + payloadFields + "}\n";
}

/// Writes @p content to @p path, overwriting; false on I/O failure.
inline bool writeTextFile(const std::string& path, const std::string& content)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        return false;
    }
    const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
    return std::fclose(f) == 0 && ok;
}

/// Console reporter that additionally accumulates every iteration run into a
/// compact JSON summary — per-benchmark wall milliseconds plus all user
/// counters (runs_per_s, items_per_second, speedups) — so CI can collect and
/// chart performance without scraping console tables.
class JsonTeeReporter : public benchmark::ConsoleReporter {
public:
    void ReportRuns(const std::vector<Run>& runs) override
    {
        for (const Run& r : runs) {
            if (r.run_type != Run::RT_Iteration || r.error_occurred) {
                continue;
            }
            const double wallSec = r.iterations > 0
                                       ? r.real_accumulated_time /
                                             static_cast<double>(r.iterations)
                                       : r.real_accumulated_time;
            std::string e = "  {\"name\": \"" + jsonId(r.benchmark_name()) + "\"";
            e += ", \"wall_ms\": " + formatDouble(wallSec * 1e3, 6);
            e += ", \"iterations\": " + std::to_string(r.iterations);
            for (const auto& [key, counter] : r.counters) {
                e += ", \"" + jsonId(key) + "\": " + formatDouble(counter, 6);
            }
            e += "}";
            entries_.push_back(std::move(e));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    /// The accumulated summary as one JSON object.
    [[nodiscard]] std::string json(const std::string& tool) const
    {
        std::string out = "{\"meta\": " + benchMetaJson(tool) + ", \"tool\": \"" + tool +
                          "\", \"benchmarks\": [\n";
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            out += entries_[i] + (i + 1 < entries_.size() ? ",\n" : "\n");
        }
        out += "]}\n";
        return out;
    }

private:
    /// Benchmark/counter names are identifier-plus-slash shaped; quote and
    /// backslash are escaped anyway so the output always parses.
    static std::string jsonId(const std::string& s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\') {
                out += '\\';
            }
            out += c;
        }
        return out;
    }

    std::vector<std::string> entries_;
};

/// Drop-in BENCHMARK_MAIN() replacement: identical console output, plus a
/// BENCH_<tool>.json summary written to the working directory.
inline int runBenchmarksToJson(int argc, char** argv, const std::string& tool)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    JsonTeeReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    const std::string path = "BENCH_" + tool + ".json";
    if (!writeTextFile(path, reporter.json(tool))) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    }
    benchmark::Shutdown();
    return 0;
}

/// Prints a compact waveform series: golden vs faulty VCO-control voltage at
/// offsets (in seconds) relative to the injection instant.
inline void printVctrlSeries(const trace::AnalogTrace& golden, const trace::AnalogTrace& faulty,
                             double tInject, const std::vector<double>& offsets)
{
    TextTable t;
    t.setHeader({"t - t_inj", "V_ctrl golden", "V_ctrl faulty", "deviation"});
    for (double dt : offsets) {
        const double time = tInject + dt;
        const double g = golden.valueAt(time);
        const double f = faulty.valueAt(time);
        t.addRow({formatSi(dt, "s"), formatSi(g, "V", 5), formatSi(f, "V", 5),
                  formatSi(f - g, "V")});
    }
    t.print();
}

} // namespace gfi::bench
