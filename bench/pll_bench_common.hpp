#pragma once
// Shared helpers for the PLL figure-reproduction benches.

#include "core/campaign.hpp"
#include "pll/pll.hpp"
#include "trace/metrics.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <cstdio>
#include <memory>

namespace gfi::bench {

/// Standard experiment tolerances for the PLL benches: 5 mV on the VCO
/// control node, 1 % of the output period (200 ps) of clock-edge jitter.
inline campaign::Tolerance pllTolerance()
{
    return campaign::Tolerance{5e-3, 0.0, 200 * kPicosecond};
}

/// Campaign runner over PllTestbench with the given config.
inline campaign::CampaignRunner makePllRunner(const pll::PllConfig& cfg)
{
    return campaign::CampaignRunner(
        [cfg] { return std::make_unique<pll::PllTestbench>(cfg); }, pllTolerance());
}

/// Runs one armed faulty testbench to completion and returns it.
inline std::unique_ptr<fault::Testbench> runFaulty(campaign::CampaignRunner& runner,
                                                   const fault::FaultSpec& f)
{
    auto tb = runner.makeTestbench();
    fault::armFault(*tb, f);
    tb->run();
    return tb;
}

/// Prints a compact waveform series: golden vs faulty VCO-control voltage at
/// offsets (in seconds) relative to the injection instant.
inline void printVctrlSeries(const trace::AnalogTrace& golden, const trace::AnalogTrace& faulty,
                             double tInject, const std::vector<double>& offsets)
{
    TextTable t;
    t.setHeader({"t - t_inj", "V_ctrl golden", "V_ctrl faulty", "deviation"});
    for (double dt : offsets) {
        const double time = tInject + dt;
        const double g = golden.valueAt(time);
        const double f = faulty.valueAt(time);
        t.addRow({formatSi(dt, "s"), formatSi(g, "V", 5), formatSi(f, "V", 5),
                  formatSi(f - g, "V")});
    }
    t.print();
}

} // namespace gfi::bench
