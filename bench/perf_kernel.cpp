// Engineering benchmarks (google-benchmark): simulation-kernel throughput and
// the cost of instrumentation. The paper's practical argument for the simple
// trapezoid model is simulation cost ("limit the complexity of the model in
// order to simplify the simulations and reduce the fault injection experiment
// duration"); these benches quantify the kernel's costs, including that the
// trapezoid does simulate faster than the double exponential, and that idle
// saboteurs are near-free.

#include "analog/passive.hpp"
#include "analog/solver.hpp"
#include "analog/sources.hpp"
#include "core/saboteur.hpp"
#include "digital/gates.hpp"
#include "digital/sequential.hpp"
#include "duts/digital_dut.hpp"
#include "obs/telemetry.hpp"
#include "pll/pll.hpp"

#include "pll_bench_common.hpp"

#include <benchmark/benchmark.h>

using namespace gfi;

namespace {

// --- digital kernel ---------------------------------------------------------

void BM_DigitalEventThroughput(benchmark::State& state)
{
    // A free-running counter: measures raw event-queue + process throughput.
    for (auto _ : state) {
        state.PauseTiming();
        digital::Circuit c;
        auto& clk = c.logicSignal("clk", digital::Logic::Zero);
        c.add<digital::ClockGen>(c, "cg", clk, 10 * kNanosecond);
        digital::Bus q = c.bus("q", 16, digital::Logic::Zero);
        c.add<digital::Counter>(c, "cnt", clk, q);
        state.ResumeTiming();
        c.runUntil(100 * kMicrosecond); // 10k clock edges
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_DigitalEventThroughput)->Unit(benchmark::kMillisecond);

void BM_GateChainPropagation(benchmark::State& state)
{
    // Event propagation down an inverter chain of the given depth.
    const int depth = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        digital::Circuit c;
        auto* prev = &c.logicSignal("s0", digital::Logic::Zero);
        for (int i = 1; i <= depth; ++i) {
            auto& next = c.logicSignal("s" + std::to_string(i), digital::Logic::U);
            c.add<digital::NotGate>(c, "inv" + std::to_string(i), *prev, next);
            prev = &next;
        }
        c.runUntil(kMicrosecond);
        auto& head = c.findLogic("s0");
        state.ResumeTiming();
        for (int toggle = 0; toggle < 100; ++toggle) {
            head.forceValue(toggle % 2 == 0 ? digital::Logic::One : digital::Logic::Zero);
            c.runUntil(c.scheduler().now() + kMicrosecond);
        }
    }
    state.SetItemsProcessed(state.iterations() * 100 * depth);
}
BENCHMARK(BM_GateChainPropagation)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

// --- analog kernel -----------------------------------------------------------

void BM_AnalogRcLadder(benchmark::State& state)
{
    // Transient over an N-section RC ladder driven by a sine.
    const int sections = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        analog::AnalogSystem sys;
        analog::NodeId prev = sys.node("in");
        sys.add<analog::SineVoltage>(sys, "vs", prev, analog::kGround, 0.0, 1.0, 1e6);
        for (int i = 0; i < sections; ++i) {
            const analog::NodeId next = sys.node("n" + std::to_string(i));
            sys.add<analog::Resistor>(sys, "r" + std::to_string(i), prev, next, 1e3);
            sys.add<analog::Capacitor>(sys, "c" + std::to_string(i), next, analog::kGround,
                                       100e-12);
            prev = next;
        }
        analog::TransientSolver solver(sys);
        solver.solveDc();
        state.ResumeTiming();
        solver.advanceTo(10e-6);
        benchmark::DoNotOptimize(sys.voltage(prev));
    }
}
BENCHMARK(BM_AnalogRcLadder)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_CrossingDetection(benchmark::State& state)
{
    // Cost of locating sine-threshold crossings by bisection.
    for (auto _ : state) {
        state.PauseTiming();
        analog::AnalogSystem sys;
        const analog::NodeId n = sys.node("osc");
        sys.add<analog::SineVoltage>(sys, "vs", n, analog::kGround, 0.0, 1.0, 10e6);
        sys.add<analog::Resistor>(sys, "rl", n, analog::kGround, 1e4);
        analog::TransientSolver solver(sys);
        int crossings = 0;
        solver.addMonitor(n, 0.0, analog::CrossingMonitor::Edge::Both,
                          [&](double, bool) { ++crossings; });
        solver.solveDc();
        state.ResumeTiming();
        while (solver.time() < 10e-6) {
            solver.advanceTo(10e-6);
        }
        benchmark::DoNotOptimize(crossings);
    }
    state.SetItemsProcessed(state.iterations() * 200); // 200 crossings per run
}
BENCHMARK(BM_CrossingDetection)->Unit(benchmark::kMillisecond);

// --- instrumentation overhead --------------------------------------------------

enum class Sab { None, Idle, TrapezoidActive, DoubleExpActive };

void runRcWithSaboteur(Sab mode)
{
    analog::AnalogSystem sys;
    const analog::NodeId in = sys.node("in");
    const analog::NodeId out = sys.node("out");
    sys.add<analog::SineVoltage>(sys, "vs", in, analog::kGround, 0.0, 1.0, 1e6);
    sys.add<analog::Resistor>(sys, "r", in, out, 1e3);
    sys.add<analog::Capacitor>(sys, "c", out, analog::kGround, 1e-9);
    if (mode != Sab::None) {
        auto& sab = sys.add<fault::CurrentSaboteur>(sys, "sab", out);
        if (mode == Sab::TrapezoidActive) {
            sab.arm(5e-6, fault::TrapezoidPulse(10e-3, 100e-12, 300e-12, 500e-12));
        } else if (mode == Sab::DoubleExpActive) {
            sab.arm(5e-6, fault::DoubleExpPulse(14.6e-3, 50e-12, 500e-12));
        }
    }
    analog::TransientSolver solver(sys);
    solver.solveDc();
    solver.advanceTo(10e-6);
}

void BM_SaboteurOverhead(benchmark::State& state)
{
    const auto mode = static_cast<Sab>(state.range(0));
    for (auto _ : state) {
        runRcWithSaboteur(mode);
    }
}
BENCHMARK(BM_SaboteurOverhead)
    ->Arg(static_cast<int>(Sab::None))
    ->Arg(static_cast<int>(Sab::Idle))
    ->Arg(static_cast<int>(Sab::TrapezoidActive))
    ->Arg(static_cast<int>(Sab::DoubleExpActive))
    ->Unit(benchmark::kMillisecond);

// --- mixed-mode: the PLL itself -------------------------------------------------

void BM_PllMixedSimulation(benchmark::State& state)
{
    // Wall cost of simulating the full mixed-signal PLL for 20 us
    // (~1000 output clock cycles, 10 reference cycles).
    for (auto _ : state) {
        pll::PllConfig cfg;
        cfg.duration = 20 * kMicrosecond;
        pll::PllTestbench tb(cfg);
        tb.run();
        benchmark::DoNotOptimize(tb.sim().solver().stats().acceptedSteps);
    }
    state.SetItemsProcessed(state.iterations() * 1000); // output cycles
}
BENCHMARK(BM_PllMixedSimulation)->Unit(benchmark::kMillisecond);

// --- telemetry overhead ---------------------------------------------------------

void BM_TelemetryOverhead(benchmark::State& state)
{
    // The observability contract: an attached metrics sink must cost under a
    // percent on a digital campaign (the kernel probes themselves are
    // always-on member increments; the sink only adds the per-run commit
    // fold). Arg 0 = no telemetry, arg 1 = metrics registry attached.
    const bool withTelemetry = state.range(0) != 0;
    std::vector<fault::FaultSpec> faults;
    {
        const duts::DigitalDutTestbench probe;
        const SimTime tInj = kMicrosecond + 7 * kNanosecond;
        for (const auto& [name, hook] : probe.sim().digital().instrumentation().all()) {
            for (int bit = 0; bit < hook.width; ++bit) {
                faults.emplace_back(fault::BitFlipFault{name, bit, tInj});
            }
        }
    }
    for (auto _ : state) {
        obs::Telemetry telemetry;
        campaign::CampaignRunner runner(
            [] { return std::make_unique<duts::DigitalDutTestbench>(); });
        runner.setWorkers(1);
        runner.setRecordTiming(false);
        if (withTelemetry) {
            runner.setTelemetry(telemetry);
        }
        const campaign::CampaignReport report = runner.run(faults);
        benchmark::DoNotOptimize(report.runs.size());
        if (withTelemetry) {
            benchmark::DoNotOptimize(
                telemetry.metrics().counterValue("gfi_digital_delta_cycles_total"));
        }
    }
    state.SetItemsProcessed(state.iterations() * static_cast<int>(faults.size()));
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv)
{
    return gfi::bench::runBenchmarksToJson(argc, argv, "perf_kernel");
}
