// Reproduces paper Figure 1: (a) the proposed trapezoidal current-pulse
// model with its parameters (injection time, PA, RT, FT, PW) and (b) its fit
// against the classical double-exponential (Messenger) model.
//
// Prints both waveforms as a time series plus the fitted parameters and the
// conserved quantities (peak current, total collected charge).

#include "core/pulse.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <cstdio>

using namespace gfi;

int main()
{
    std::printf("=== Figure 1(a): proposed trapezoidal model (PA, RT, FT, PW) ===\n\n");
    // The paper's Figure 6 parameter set as the reference instance.
    fault::TrapezoidPulse trap(10e-3, 100e-12, 300e-12, 500e-12);
    std::printf("Model: %s\n", trap.describe().c_str());
    std::printf("Peak %s, charge %s\n\n", formatSi(trap.peak(), "A").c_str(),
                formatSi(trap.charge(), "C").c_str());

    std::printf("=== Figure 1(b): fit against the double-exponential model ===\n\n");
    // Classical Messenger parameters for a heavy-ion strike.
    fault::DoubleExpPulse dexp(14.6e-3, 50e-12, 500e-12);
    std::printf("Double-exponential: %s\n", dexp.describe().c_str());
    std::printf("  peak %s at t = %s, charge %s\n", formatSi(dexp.peak(), "A").c_str(),
                formatSi(dexp.peakTime(), "s").c_str(), formatSi(dexp.charge(), "C").c_str());

    const fault::TrapezoidPulse fitted = fault::fitTrapezoid(dexp);
    std::printf("Fitted trapezoid:   %s\n", fitted.describe().c_str());
    std::printf("  peak %s, charge %s (conserved)\n\n",
                formatSi(fitted.peak(), "A").c_str(), formatSi(fitted.charge(), "C").c_str());

    TextTable series;
    series.setHeader({"time", "I double-exp", "I fitted trapezoid", "I Fig.6 trapezoid"});
    for (int i = 0; i <= 24; ++i) {
        const double t = i * 50e-12;
        series.addRow({formatSi(t, "s"), formatSi(dexp.current(t), "A", 4),
                       formatSi(fitted.current(t), "A", 4),
                       formatSi(trap.current(t), "A", 4)});
    }
    series.print();

    std::printf("\n=== Inverse fit: double-exponential from the Fig.6 trapezoid ===\n\n");
    const fault::DoubleExpPulse inverse = fault::fitDoubleExp(trap);
    std::printf("%s\n", inverse.describe().c_str());
    std::printf("  peak %s (target %s), charge %s (target %s)\n",
                formatSi(inverse.peak(), "A").c_str(), formatSi(trap.peak(), "A").c_str(),
                formatSi(inverse.charge(), "C").c_str(),
                formatSi(trap.charge(), "C").c_str());

    std::printf("\nThe paper's Figure 8 parameter sets (PA, RT, FT, PW) and their charge:\n\n");
    TextTable sets;
    sets.setHeader({"PA", "RT", "FT", "PW", "charge"});
    const double params[4][4] = {
        {2e-3, 100e-12, 100e-12, 300e-12},
        {8e-3, 100e-12, 100e-12, 300e-12},
        {10e-3, 40e-12, 40e-12, 120e-12},
        {10e-3, 180e-12, 180e-12, 540e-12},
    };
    for (const auto& p : params) {
        fault::TrapezoidPulse pulse(p[0], p[1], p[2], p[3]);
        sets.addRow({formatSi(p[0], "A"), formatSi(p[1], "s"), formatSi(p[2], "s"),
                     formatSi(p[3], "s"), formatSi(pulse.charge(), "C")});
    }
    sets.print();
    return 0;
}
