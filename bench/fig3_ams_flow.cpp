// Reproduces paper Figure 3: the proposed AMS analysis flow — ONE unified
// campaign over a mixed-signal circuit in which digital blocks are
// instrumented with mutants, analog blocks with (current) saboteurs, the
// simulation is mixed-mode, and the result analysis applies a tolerance on
// analog values.
//
// The circuit is the paper's PLL. The campaign mixes:
//   * digital faults: SEU bit-flips in the PFD flags and the divider state;
//   * analog faults : current pulses on the filter input and the VCO output;
//   * parametric    : loop-filter component deviations (ref [10] style).

#include "pll_bench_common.hpp"

using namespace gfi;
using namespace gfi::bench;

int main()
{
    pll::PllConfig cfg;
    cfg.duration = 170 * kMicrosecond;
    const SimTime tDig = 130 * kMicrosecond + 300 * kNanosecond;
    const double tAna = 130e-6;

    std::printf("=== Figure 3: unified AMS fault-injection flow on the PLL ===\n\n");
    auto runner = makePllRunner(cfg);

    auto probe = runner.makeTestbench();
    std::printf("Instrumentation: %zu digital mutant hooks, %zu analog saboteurs\n\n",
                probe->sim().digital().instrumentation().names().size(),
                probe->currentSaboteurNames().size());

    auto pulse = std::make_shared<fault::TrapezoidPulse>(10e-3, 100e-12, 300e-12, 500e-12);

    std::vector<fault::FaultSpec> faults;
    // Digital part (mutants).
    faults.emplace_back(fault::BitFlipFault{"pll/pfd", 0, tDig});     // UP flag
    faults.emplace_back(fault::BitFlipFault{"pll/pfd", 1, tDig});     // DOWN flag
    faults.emplace_back(fault::BitFlipFault{"pll/divider", 2, tDig}); // count bit
    faults.emplace_back(fault::BitFlipFault{"pll/divider", 5, tDig}); // count bit
    // Analog part (saboteurs).
    faults.emplace_back(fault::CurrentPulseFault{pll::names::kSabFilter, tAna, pulse});
    faults.emplace_back(fault::CurrentPulseFault{pll::names::kSabVcoOut, tAna, pulse});
    // Parametric (behavioral-description faults, still supported by the flow).
    faults.emplace_back(fault::ParametricFault{"pll/c2", 1.5, 0});
    faults.emplace_back(fault::ParametricFault{"pll/kvco", 0.8, 0});

    const auto report = runner.run(faults, [](std::size_t i, const campaign::RunResult& r) {
        std::printf("run %zu: %-70s -> %s\n", i + 1, fault::describe(r.fault).c_str(),
                    campaign::toString(r.outcome));
    });

    std::printf("\nUnified classification (digital + analog + parametric faults, one flow):\n%s\n",
                report.summaryTable().c_str());
    std::printf("%s\n", report.detailTable().c_str());

    std::printf("The same campaign engine, trace comparison (with analog tolerance) and\n"
                "classification served every fault class — the paper's Figure 3 flow.\n");
    return 0;
}
