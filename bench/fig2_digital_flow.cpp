// Reproduces paper Figure 2: the established digital dependability-analysis
// flow — instrumentation (mutants for bit-flips, saboteurs for SETs/stuck-ats)
// -> fault-injection campaign -> simulation -> trace analysis -> failure
// report / classification -> behavioural (error-propagation) model generation.
//
// The design under test is the controller+datapath block of src/duts; the
// bench runs an exhaustive bit-flip campaign plus SET and stuck-at saboteur
// campaigns, and prints the classification and propagation tables.

#include "core/campaign.hpp"
#include "duts/digital_dut.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <cstdio>

using namespace gfi;

int main()
{
    std::printf("=== Figure 2: digital analysis flow (instrument -> inject -> classify) ===\n\n");
    duts::DigitalDutConfig cfg;
    campaign::CampaignRunner runner(
        [cfg] { return std::make_unique<duts::DigitalDutTestbench>(cfg); });

    auto probe = runner.makeTestbench();
    const auto& registry = probe->sim().digital().instrumentation();
    std::printf("Step 1 - instrumentation: %zu mutant hooks (%d bits), %zu saboteurs\n",
                registry.names().size(), registry.totalBits(),
                probe->digitalSaboteurNames().size());

    // Step 2 - campaign definition: exhaustive bit-flips x 4 times, SET pulses
    // and stuck-ats through the saboteurs.
    const std::vector<SimTime> times{
        kMicrosecond + 7 * kNanosecond, 2 * kMicrosecond + 13 * kNanosecond,
        3 * kMicrosecond + 3 * kNanosecond, 3 * kMicrosecond + 511 * kNanosecond};
    std::vector<fault::FaultSpec> bitFlips;
    for (const auto& [name, hook] : registry.all()) {
        for (int bit = 0; bit < hook.width; ++bit) {
            for (SimTime t : times) {
                bitFlips.emplace_back(fault::BitFlipFault{name, bit, t});
            }
        }
    }
    std::vector<fault::FaultSpec> sets;
    std::vector<fault::FaultSpec> stucks;
    for (const std::string& sab : probe->digitalSaboteurNames()) {
        for (SimTime t : times) {
            sets.emplace_back(fault::DigitalPulseFault{sab, t, 25 * kNanosecond});
            stucks.emplace_back(fault::StuckAtFault{sab, digital::Logic::Zero, t, 0});
            stucks.emplace_back(fault::StuckAtFault{sab, digital::Logic::One, t, 0});
        }
    }
    std::printf("Step 2 - campaign definition: %zu bit-flips, %zu SETs, %zu stuck-ats\n\n",
                bitFlips.size(), sets.size(), stucks.size());

    // Step 3/4 - simulate, analyze traces, classify.
    campaign::PropagationModel propagation;
    auto record = [&](std::size_t, const campaign::RunResult& r) {
        propagation.record(campaign::targetOf(r.fault), r.erredSignals);
    };
    const auto repFlips = runner.run(bitFlips, record);
    const auto repSets = runner.run(sets, record);
    const auto repStuck = runner.run(stucks, record);

    std::printf("Classification — SEU bit-flips (mutants):\n%s\n",
                repFlips.summaryTable().c_str());
    std::printf("Classification — SET pulses (saboteurs):\n%s\n",
                repSets.summaryTable().c_str());
    std::printf("Classification — stuck-ats (saboteurs):\n%s\n",
                repStuck.summaryTable().c_str());

    // Step 5 - behavioural model generation.
    std::printf("Error-propagation model (behavioural model generation):\n%s\n",
                propagation.table().c_str());

    // Per-target vulnerability ranking — the data a designer uses to decide
    // which nodes to protect (the paper's motivation (1) in the introduction).
    std::printf("Per-target vulnerability (non-silent fraction of bit-flips):\n");
    TextTable t;
    t.setHeader({"target", "bits", "injections", "non-silent", "fraction"});
    for (const auto& [name, hook] : registry.all()) {
        int runs = 0;
        int nonSilent = 0;
        for (const auto& r : repFlips.runs) {
            if (campaign::targetOf(r.fault) == name) {
                ++runs;
                nonSilent += r.outcome != campaign::Outcome::Silent ? 1 : 0;
            }
        }
        t.addRow({name, std::to_string(hook.width), std::to_string(runs),
                  std::to_string(nonSilent),
                  formatDouble(100.0 * nonSilent / std::max(runs, 1), 3) + " %"});
    }
    t.print();
    return 0;
}
