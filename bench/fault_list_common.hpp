#pragma once
// Shared fault-list builders (and the wall-clock helper) for the perf_*
// engineering benchmarks. Each perf tool measures a different campaign
// optimisation — static collapsing, fork-from-golden, the bit-parallel batch
// backend — but they sweep the same canonical fault populations; keeping the
// sweeps here means a benchmarked population can never drift between tools.

#include "core/fault.hpp"
#include "duts/chain_dut.hpp"
#include "duts/digital_dut.hpp"
#include "pll/pll.hpp"
#include "util/units.hpp"

#include <chrono>
#include <functional>
#include <string>
#include <vector>

namespace gfi::bench {

/// Wall-clock seconds spent inside @p fn.
inline double seconds(const std::function<void()>& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    return dt.count();
}

/// The paper's SET parameter sweep restated for the digital chain: every
/// chain saboteur x injection times x pulse widths, plus permanent and
/// transient stuck-at-0/1, plus the dead branch (statically masked). This is
/// perf_collapse's population: the chained zero-delay saboteurs are provably
/// equivalent injection sites, so it collapses hard.
inline std::vector<fault::FaultSpec> chainSetSweepFaults()
{
    const std::vector<SimTime> injectTimes{600 * kNanosecond, kMicrosecond,
                                           1400 * kNanosecond};
    const std::vector<SimTime> widths{kNanosecond, 5 * kNanosecond, 25 * kNanosecond};

    std::vector<fault::FaultSpec> faults;
    const auto chain = duts::ChainDutTestbench::chainSaboteurs();
    std::vector<std::string> sabs(chain.begin(), chain.end());
    sabs.push_back(duts::ChainDutTestbench::deadSaboteur());
    for (const std::string& sab : sabs) {
        for (SimTime t : injectTimes) {
            for (SimTime w : widths) {
                faults.emplace_back(fault::DigitalPulseFault{sab, t, w});
            }
            faults.emplace_back(
                fault::StuckAtFault{sab, digital::Logic::Zero, t, /*duration=*/0});
            faults.emplace_back(
                fault::StuckAtFault{sab, digital::Logic::One, t, 40 * kNanosecond});
        }
    }
    return faults;
}

/// Figure 8's pulse parameter sets (PA, RT, FT, PW) on the PLL filter input,
/// each injected at two late instants — the regime the paper sweeps once the
/// PLL is locked. This is perf_snapshot's population: every run shares the
/// long lock-in prefix that fork-from-golden amortises.
inline std::vector<fault::FaultSpec> pllFigure8PulseFaults()
{
    struct ParamSet {
        double pa, rt, ft, pw;
    };
    const std::vector<ParamSet> sets{
        {2e-3, 100e-12, 100e-12, 300e-12},
        {8e-3, 100e-12, 100e-12, 300e-12},
        {10e-3, 40e-12, 40e-12, 120e-12},
        {10e-3, 180e-12, 180e-12, 540e-12},
    };
    const std::vector<double> injectTimes{30e-6, 36e-6};

    std::vector<fault::FaultSpec> faults;
    for (const ParamSet& p : sets) {
        auto shape = std::make_shared<fault::TrapezoidPulse>(p.pa, p.rt, p.ft, p.pw);
        for (double t : injectTimes) {
            faults.emplace_back(fault::CurrentPulseFault{pll::names::kSabFilter, t, shape});
        }
    }
    return faults;
}

/// A dense batch-eligible SEU population on the DigitalDut: bit flips over
/// every state hook x bit x injection instant, plus permanent and windowed
/// stuck-ats on every interconnect saboteur — at least @p minFaults faults,
/// all word-simulable. This is perf_batch's population: with 63 fault lanes
/// per word run the batch backend retires it in ceil(n/63) group simulations.
inline std::vector<fault::FaultSpec> digitalDutBatchFaults(std::size_t minFaults,
                                                           SimTime duration)
{
    const duts::DigitalDutTestbench probe;
    const auto& hooks = probe.sim().digital().instrumentation().all();
    const std::vector<std::string> sabs = probe.digitalSaboteurNames();

    std::vector<fault::FaultSpec> faults;
    for (int round = 0; faults.size() < minFaults && round < 64; ++round) {
        const SimTime t = duration / 4 + round * (duration / 128) + 7 * kNanosecond;
        for (const auto& [name, hook] : hooks) {
            for (int b = 0; b < hook.width && b < 8; ++b) {
                faults.emplace_back(fault::BitFlipFault{name, b, t});
            }
        }
        for (const std::string& sab : sabs) {
            faults.emplace_back(fault::StuckAtFault{sab, digital::Logic::One, t, 0});
            faults.emplace_back(fault::StuckAtFault{sab, digital::Logic::Zero, t,
                                                    duration / 16});
        }
    }
    return faults;
}

} // namespace gfi::bench
