// Fork-from-golden speedup on the paper's Figure 8 experiment: a sweep of
// current pulses on the PLL filter input, injected late in the run. A
// from-scratch campaign re-simulates the whole lock-in prefix for every
// fault; fork mode restores the nearest golden checkpoint and re-runs only
// the post-injection suffix, so the speedup approaches
// (runs x duration) / (duration + runs x suffix).
//
// Emits a single JSON object (machine-readable, consumed by CI) with the
// scratch and forked campaign wall-clock times, the speedup, and whether the
// two campaigns produced byte-identical reports.

#include "pll_bench_common.hpp"

#include "core/report.hpp"

#include <chrono>
#include <cstdio>
#include <functional>

using namespace gfi;
using namespace gfi::bench;

namespace {

double seconds(const std::function<void()>& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    return dt.count();
}

struct CampaignResult {
    double wallSeconds = 0;
    std::string summary;
    std::string json;
    std::size_t checkpoints = 0;
};

CampaignResult runCampaign(const pll::PllConfig& cfg,
                           const std::vector<fault::FaultSpec>& faults, SimTime cadence)
{
    campaign::CampaignRunner runner = makePllRunner(cfg);
    runner.setRecordTiming(false); // keep reports byte-comparable across modes
    runner.setCheckpointCadence(cadence);
    CampaignResult out;
    campaign::CampaignReport report;
    out.wallSeconds = seconds([&] { report = runner.run(faults); });
    out.summary = report.summaryTable();
    out.json = campaign::reportToJson(report);
    out.checkpoints = runner.checkpointCount();
    return out;
}

} // namespace

int main()
{
    pll::PllConfig cfg;
    cfg.duration = 40 * kMicrosecond;

    // Figure 8's pulse parameter sets (PA, RT, FT, PW), each injected at two
    // late instants — the regime the paper sweeps once the PLL is locked.
    struct ParamSet {
        double pa, rt, ft, pw;
    };
    const std::vector<ParamSet> sets{
        {2e-3, 100e-12, 100e-12, 300e-12},
        {8e-3, 100e-12, 100e-12, 300e-12},
        {10e-3, 40e-12, 40e-12, 120e-12},
        {10e-3, 180e-12, 180e-12, 540e-12},
    };
    const std::vector<double> injectTimes{30e-6, 36e-6};

    std::vector<fault::FaultSpec> faults;
    for (const ParamSet& p : sets) {
        auto shape = std::make_shared<fault::TrapezoidPulse>(p.pa, p.rt, p.ft, p.pw);
        for (double t : injectTimes) {
            faults.emplace_back(fault::CurrentPulseFault{pll::names::kSabFilter, t, shape});
        }
    }

    std::fprintf(stderr, "perf_snapshot: %zu faults, duration %s\n", faults.size(),
                 formatTime(cfg.duration).c_str());

    const CampaignResult scratch = runCampaign(cfg, faults, -1);
    std::fprintf(stderr, "  from-scratch: %.3f s\n", scratch.wallSeconds);

    const CampaignResult forked = runCampaign(cfg, faults, 2 * kMicrosecond);
    std::fprintf(stderr, "  fork-from-golden: %.3f s (%zu checkpoints)\n",
                 forked.wallSeconds, forked.checkpoints);

    const bool identical =
        forked.summary == scratch.summary && forked.json == scratch.json;
    const double speedup =
        forked.wallSeconds > 0 ? scratch.wallSeconds / forked.wallSeconds : 0.0;

    char jsonLine[512];
    std::snprintf(jsonLine, sizeof jsonLine,
                  "{\"benchmark\": \"perf_snapshot\", \"experiment\": \"fig8_pulse_sweep\", "
                  "\"runs\": %zu, \"checkpoints\": %zu, \"scratch_s\": %.3f, "
                  "\"fork_s\": %.3f, \"speedup\": %.2f, \"identical\": %s}\n",
                  faults.size(), forked.checkpoints, scratch.wallSeconds,
                  forked.wallSeconds, speedup, identical ? "true" : "false");
    std::fputs(jsonLine, stdout);
    if (!writeTextFile("BENCH_perf_snapshot.json", jsonLine)) {
        std::fprintf(stderr, "warning: cannot write BENCH_perf_snapshot.json\n");
    }

    if (!identical) {
        std::fprintf(stderr, "FAIL: forked campaign output differs from scratch\n");
        return 1;
    }
    if (speedup < 2.0) {
        std::fprintf(stderr, "FAIL: speedup %.2f below the 2x target\n", speedup);
        return 1;
    }
    return 0;
}
