// Fork-from-golden speedup on the paper's Figure 8 experiment: a sweep of
// current pulses on the PLL filter input, injected late in the run. A
// from-scratch campaign re-simulates the whole lock-in prefix for every
// fault; fork mode restores the nearest golden checkpoint and re-runs only
// the post-injection suffix, so the speedup approaches
// (runs x duration) / (duration + runs x suffix).
//
// Emits a single JSON object (machine-readable, consumed by CI) with the
// scratch and forked campaign wall-clock times, the speedup, and whether the
// two campaigns produced byte-identical reports.

#include "fault_list_common.hpp"
#include "pll_bench_common.hpp"

#include "core/report.hpp"

#include <cstdio>
#include <functional>

using namespace gfi;
using namespace gfi::bench;

namespace {

struct CampaignResult {
    double wallSeconds = 0;
    std::string summary;
    std::string json;
    std::size_t checkpoints = 0;
};

CampaignResult runCampaign(const pll::PllConfig& cfg,
                           const std::vector<fault::FaultSpec>& faults, SimTime cadence)
{
    campaign::CampaignRunner runner = makePllRunner(cfg);
    runner.setRecordTiming(false); // keep reports byte-comparable across modes
    runner.setCheckpointCadence(cadence);
    CampaignResult out;
    campaign::CampaignReport report;
    out.wallSeconds = seconds([&] { report = runner.run(faults); });
    out.summary = report.summaryTable();
    out.json = campaign::reportToJson(report);
    out.checkpoints = runner.checkpointCount();
    return out;
}

} // namespace

int main()
{
    pll::PllConfig cfg;
    cfg.duration = 40 * kMicrosecond;

    // Figure 8's pulse parameter sweep (shared with the other perf tools via
    // fault_list_common.hpp).
    const std::vector<fault::FaultSpec> faults = pllFigure8PulseFaults();

    std::fprintf(stderr, "perf_snapshot: %zu faults, duration %s\n", faults.size(),
                 formatTime(cfg.duration).c_str());

    const CampaignResult scratch = runCampaign(cfg, faults, -1);
    std::fprintf(stderr, "  from-scratch: %.3f s\n", scratch.wallSeconds);

    const CampaignResult forked = runCampaign(cfg, faults, 2 * kMicrosecond);
    std::fprintf(stderr, "  fork-from-golden: %.3f s (%zu checkpoints)\n",
                 forked.wallSeconds, forked.checkpoints);

    const bool identical =
        forked.summary == scratch.summary && forked.json == scratch.json;
    const double speedup =
        forked.wallSeconds > 0 ? scratch.wallSeconds / forked.wallSeconds : 0.0;

    char jsonLine[512];
    std::snprintf(jsonLine, sizeof jsonLine,
                  "\"benchmark\": \"perf_snapshot\", \"experiment\": \"fig8_pulse_sweep\", "
                  "\"runs\": %zu, \"checkpoints\": %zu, \"scratch_s\": %.3f, "
                  "\"fork_s\": %.3f, \"speedup\": %.2f, \"identical\": %s",
                  faults.size(), forked.checkpoints, scratch.wallSeconds,
                  forked.wallSeconds, speedup, identical ? "true" : "false");
    const std::string doc = bench::benchJsonLine("perf_snapshot", jsonLine);
    std::fputs(doc.c_str(), stdout);
    if (!writeTextFile("BENCH_perf_snapshot.json", doc)) {
        std::fprintf(stderr, "warning: cannot write BENCH_perf_snapshot.json\n");
    }

    if (!identical) {
        std::fprintf(stderr, "FAIL: forked campaign output differs from scratch\n");
        return 1;
    }
    if (speedup < 2.0) {
        std::fprintf(stderr, "FAIL: speedup %.2f below the 2x target\n", speedup);
        return 1;
    }
    return 0;
}
