// Parallel campaign executor: wall-clock scaling on the Figure 2 exhaustive
// digital campaign. One fault list (every stored bit x 4 injection times plus
// the saboteur SET/stuck-at population), swept across worker counts; the
// speedup counter is real-time relative to the 1-worker run of the same
// process, so `perf_parallel` directly demonstrates the near-linear scaling
// claim on a multi-core host. On a single-core host every width degrades to
// roughly 1x — the determinism guarantee is what keeps that safe.

#include "core/campaign.hpp"
#include "duts/digital_dut.hpp"

#include "pll_bench_common.hpp"

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

using namespace gfi;

namespace {

std::vector<fault::FaultSpec> exhaustiveDigitalFaults()
{
    const duts::DigitalDutTestbench probe;
    const std::vector<SimTime> times{
        kMicrosecond + 7 * kNanosecond, 2 * kMicrosecond + 13 * kNanosecond,
        3 * kMicrosecond + 3 * kNanosecond, 3 * kMicrosecond + 511 * kNanosecond};
    std::vector<fault::FaultSpec> faults;
    for (const auto& [name, hook] : probe.sim().digital().instrumentation().all()) {
        for (int bit = 0; bit < hook.width; ++bit) {
            for (SimTime t : times) {
                faults.emplace_back(fault::BitFlipFault{name, bit, t});
            }
        }
    }
    for (const std::string& sab : probe.digitalSaboteurNames()) {
        for (SimTime t : times) {
            faults.emplace_back(fault::DigitalPulseFault{sab, t, 25 * kNanosecond});
            faults.emplace_back(fault::StuckAtFault{sab, digital::Logic::Zero, t, 0});
            faults.emplace_back(fault::StuckAtFault{sab, digital::Logic::One, t, 0});
        }
    }
    return faults;
}

double& serialSecondsBaseline()
{
    static double baseline = 0.0;
    return baseline;
}

void BM_ExhaustiveDigitalCampaign(benchmark::State& state)
{
    const auto workers = static_cast<unsigned>(state.range(0));
    const auto faults = exhaustiveDigitalFaults();
    double seconds = 0.0;
    for (auto _ : state) {
        campaign::CampaignRunner runner(
            [] { return std::make_unique<duts::DigitalDutTestbench>(); });
        runner.setWorkers(workers);
        const auto start = std::chrono::steady_clock::now();
        const campaign::CampaignReport report = runner.run(faults);
        seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                      .count();
        benchmark::DoNotOptimize(report.runs.size());
    }
    if (workers == 1) {
        serialSecondsBaseline() = seconds;
    }
    state.counters["faults"] = static_cast<double>(faults.size());
    state.counters["runs_per_s"] =
        benchmark::Counter(static_cast<double>(faults.size()) / seconds);
    if (serialSecondsBaseline() > 0.0) {
        state.counters["speedup_vs_serial"] = serialSecondsBaseline() / seconds;
    }
}
// Workers 1 first: it records the serial baseline the speedup counter uses.
BENCHMARK(BM_ExhaustiveDigitalCampaign)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kSecond)
    ->UseRealTime();

} // namespace

int main(int argc, char** argv)
{
    return gfi::bench::runBenchmarksToJson(argc, argv, "perf_parallel");
}
