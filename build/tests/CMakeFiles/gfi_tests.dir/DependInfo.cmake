
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ac.cpp" "tests/CMakeFiles/gfi_tests.dir/test_ac.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_ac.cpp.o.d"
  "/root/repo/tests/test_adc.cpp" "tests/CMakeFiles/gfi_tests.dir/test_adc.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_adc.cpp.o.d"
  "/root/repo/tests/test_analog_linear.cpp" "tests/CMakeFiles/gfi_tests.dir/test_analog_linear.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_analog_linear.cpp.o.d"
  "/root/repo/tests/test_analog_solver.cpp" "tests/CMakeFiles/gfi_tests.dir/test_analog_solver.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_analog_solver.cpp.o.d"
  "/root/repo/tests/test_bridge.cpp" "tests/CMakeFiles/gfi_tests.dir/test_bridge.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_bridge.cpp.o.d"
  "/root/repo/tests/test_campaign.cpp" "tests/CMakeFiles/gfi_tests.dir/test_campaign.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_campaign.cpp.o.d"
  "/root/repo/tests/test_components.cpp" "tests/CMakeFiles/gfi_tests.dir/test_components.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_components.cpp.o.d"
  "/root/repo/tests/test_controlled_cc.cpp" "tests/CMakeFiles/gfi_tests.dir/test_controlled_cc.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_controlled_cc.cpp.o.d"
  "/root/repo/tests/test_ecc_ram.cpp" "tests/CMakeFiles/gfi_tests.dir/test_ecc_ram.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_ecc_ram.cpp.o.d"
  "/root/repo/tests/test_faultlist.cpp" "tests/CMakeFiles/gfi_tests.dir/test_faultlist.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_faultlist.cpp.o.d"
  "/root/repo/tests/test_harden.cpp" "tests/CMakeFiles/gfi_tests.dir/test_harden.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_harden.cpp.o.d"
  "/root/repo/tests/test_logic.cpp" "tests/CMakeFiles/gfi_tests.dir/test_logic.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_logic.cpp.o.d"
  "/root/repo/tests/test_memory.cpp" "tests/CMakeFiles/gfi_tests.dir/test_memory.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_memory.cpp.o.d"
  "/root/repo/tests/test_misc.cpp" "tests/CMakeFiles/gfi_tests.dir/test_misc.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_misc.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/gfi_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_opamp.cpp" "tests/CMakeFiles/gfi_tests.dir/test_opamp.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_opamp.cpp.o.d"
  "/root/repo/tests/test_pfd_structural.cpp" "tests/CMakeFiles/gfi_tests.dir/test_pfd_structural.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_pfd_structural.cpp.o.d"
  "/root/repo/tests/test_pll.cpp" "tests/CMakeFiles/gfi_tests.dir/test_pll.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_pll.cpp.o.d"
  "/root/repo/tests/test_properties_digital.cpp" "tests/CMakeFiles/gfi_tests.dir/test_properties_digital.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_properties_digital.cpp.o.d"
  "/root/repo/tests/test_pulse.cpp" "tests/CMakeFiles/gfi_tests.dir/test_pulse.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_pulse.cpp.o.d"
  "/root/repo/tests/test_saboteur.cpp" "tests/CMakeFiles/gfi_tests.dir/test_saboteur.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_saboteur.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/gfi_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_solver_properties.cpp" "tests/CMakeFiles/gfi_tests.dir/test_solver_properties.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_solver_properties.cpp.o.d"
  "/root/repo/tests/test_tiny_cpu.cpp" "tests/CMakeFiles/gfi_tests.dir/test_tiny_cpu.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_tiny_cpu.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/gfi_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/gfi_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gfi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
