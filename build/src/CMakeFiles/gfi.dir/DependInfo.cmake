
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adc/flash.cpp" "src/CMakeFiles/gfi.dir/adc/flash.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/adc/flash.cpp.o.d"
  "/root/repo/src/adc/sar.cpp" "src/CMakeFiles/gfi.dir/adc/sar.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/adc/sar.cpp.o.d"
  "/root/repo/src/ams/bridge.cpp" "src/CMakeFiles/gfi.dir/ams/bridge.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/ams/bridge.cpp.o.d"
  "/root/repo/src/ams/mixed_sim.cpp" "src/CMakeFiles/gfi.dir/ams/mixed_sim.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/ams/mixed_sim.cpp.o.d"
  "/root/repo/src/analog/ac.cpp" "src/CMakeFiles/gfi.dir/analog/ac.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/analog/ac.cpp.o.d"
  "/root/repo/src/analog/controlled.cpp" "src/CMakeFiles/gfi.dir/analog/controlled.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/analog/controlled.cpp.o.d"
  "/root/repo/src/analog/linear.cpp" "src/CMakeFiles/gfi.dir/analog/linear.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/analog/linear.cpp.o.d"
  "/root/repo/src/analog/netlist.cpp" "src/CMakeFiles/gfi.dir/analog/netlist.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/analog/netlist.cpp.o.d"
  "/root/repo/src/analog/opamp.cpp" "src/CMakeFiles/gfi.dir/analog/opamp.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/analog/opamp.cpp.o.d"
  "/root/repo/src/analog/passive.cpp" "src/CMakeFiles/gfi.dir/analog/passive.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/analog/passive.cpp.o.d"
  "/root/repo/src/analog/solver.cpp" "src/CMakeFiles/gfi.dir/analog/solver.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/analog/solver.cpp.o.d"
  "/root/repo/src/analog/sources.cpp" "src/CMakeFiles/gfi.dir/analog/sources.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/analog/sources.cpp.o.d"
  "/root/repo/src/analog/system.cpp" "src/CMakeFiles/gfi.dir/analog/system.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/analog/system.cpp.o.d"
  "/root/repo/src/core/campaign.cpp" "src/CMakeFiles/gfi.dir/core/campaign.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/core/campaign.cpp.o.d"
  "/root/repo/src/core/fault.cpp" "src/CMakeFiles/gfi.dir/core/fault.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/core/fault.cpp.o.d"
  "/root/repo/src/core/faultlist.cpp" "src/CMakeFiles/gfi.dir/core/faultlist.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/core/faultlist.cpp.o.d"
  "/root/repo/src/core/pulse.cpp" "src/CMakeFiles/gfi.dir/core/pulse.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/core/pulse.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/gfi.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/core/report.cpp.o.d"
  "/root/repo/src/core/saboteur.cpp" "src/CMakeFiles/gfi.dir/core/saboteur.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/core/saboteur.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/gfi.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/core/stats.cpp.o.d"
  "/root/repo/src/core/testbench.cpp" "src/CMakeFiles/gfi.dir/core/testbench.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/core/testbench.cpp.o.d"
  "/root/repo/src/digital/arith.cpp" "src/CMakeFiles/gfi.dir/digital/arith.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/digital/arith.cpp.o.d"
  "/root/repo/src/digital/circuit.cpp" "src/CMakeFiles/gfi.dir/digital/circuit.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/digital/circuit.cpp.o.d"
  "/root/repo/src/digital/fsm.cpp" "src/CMakeFiles/gfi.dir/digital/fsm.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/digital/fsm.cpp.o.d"
  "/root/repo/src/digital/gates.cpp" "src/CMakeFiles/gfi.dir/digital/gates.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/digital/gates.cpp.o.d"
  "/root/repo/src/digital/instrument.cpp" "src/CMakeFiles/gfi.dir/digital/instrument.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/digital/instrument.cpp.o.d"
  "/root/repo/src/digital/logic.cpp" "src/CMakeFiles/gfi.dir/digital/logic.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/digital/logic.cpp.o.d"
  "/root/repo/src/digital/memory.cpp" "src/CMakeFiles/gfi.dir/digital/memory.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/digital/memory.cpp.o.d"
  "/root/repo/src/digital/scheduler.cpp" "src/CMakeFiles/gfi.dir/digital/scheduler.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/digital/scheduler.cpp.o.d"
  "/root/repo/src/digital/sequential.cpp" "src/CMakeFiles/gfi.dir/digital/sequential.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/digital/sequential.cpp.o.d"
  "/root/repo/src/duts/digital_dut.cpp" "src/CMakeFiles/gfi.dir/duts/digital_dut.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/duts/digital_dut.cpp.o.d"
  "/root/repo/src/duts/opamp_dut.cpp" "src/CMakeFiles/gfi.dir/duts/opamp_dut.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/duts/opamp_dut.cpp.o.d"
  "/root/repo/src/duts/protected_dut.cpp" "src/CMakeFiles/gfi.dir/duts/protected_dut.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/duts/protected_dut.cpp.o.d"
  "/root/repo/src/duts/tiny_cpu.cpp" "src/CMakeFiles/gfi.dir/duts/tiny_cpu.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/duts/tiny_cpu.cpp.o.d"
  "/root/repo/src/harden/ecc_ram.cpp" "src/CMakeFiles/gfi.dir/harden/ecc_ram.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/harden/ecc_ram.cpp.o.d"
  "/root/repo/src/harden/hamming.cpp" "src/CMakeFiles/gfi.dir/harden/hamming.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/harden/hamming.cpp.o.d"
  "/root/repo/src/harden/scrubber.cpp" "src/CMakeFiles/gfi.dir/harden/scrubber.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/harden/scrubber.cpp.o.d"
  "/root/repo/src/harden/tmr.cpp" "src/CMakeFiles/gfi.dir/harden/tmr.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/harden/tmr.cpp.o.d"
  "/root/repo/src/pll/pfd.cpp" "src/CMakeFiles/gfi.dir/pll/pfd.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/pll/pfd.cpp.o.d"
  "/root/repo/src/pll/pfd_structural.cpp" "src/CMakeFiles/gfi.dir/pll/pfd_structural.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/pll/pfd_structural.cpp.o.d"
  "/root/repo/src/pll/pll.cpp" "src/CMakeFiles/gfi.dir/pll/pll.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/pll/pll.cpp.o.d"
  "/root/repo/src/pll/vco.cpp" "src/CMakeFiles/gfi.dir/pll/vco.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/pll/vco.cpp.o.d"
  "/root/repo/src/sim/time.cpp" "src/CMakeFiles/gfi.dir/sim/time.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/sim/time.cpp.o.d"
  "/root/repo/src/trace/compare.cpp" "src/CMakeFiles/gfi.dir/trace/compare.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/trace/compare.cpp.o.d"
  "/root/repo/src/trace/metrics.cpp" "src/CMakeFiles/gfi.dir/trace/metrics.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/trace/metrics.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/gfi.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/trace/trace.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/gfi.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/util/table.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/CMakeFiles/gfi.dir/util/units.cpp.o" "gcc" "src/CMakeFiles/gfi.dir/util/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
