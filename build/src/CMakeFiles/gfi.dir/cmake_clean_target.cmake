file(REMOVE_RECURSE
  "libgfi.a"
)
