# Empty dependencies file for gfi.
# This may be replaced when dependencies are built.
