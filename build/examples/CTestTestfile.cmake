# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_netlist_injection "/root/repo/build/examples/example_netlist_injection")
set_tests_properties(example_netlist_injection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_digital_campaign "/root/repo/build/examples/example_digital_campaign")
set_tests_properties(example_digital_campaign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
