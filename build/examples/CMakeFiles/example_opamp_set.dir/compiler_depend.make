# Empty compiler generated dependencies file for example_opamp_set.
# This may be replaced when dependencies are built.
