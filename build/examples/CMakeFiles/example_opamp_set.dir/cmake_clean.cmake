file(REMOVE_RECURSE
  "CMakeFiles/example_opamp_set.dir/opamp_set.cpp.o"
  "CMakeFiles/example_opamp_set.dir/opamp_set.cpp.o.d"
  "example_opamp_set"
  "example_opamp_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_opamp_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
