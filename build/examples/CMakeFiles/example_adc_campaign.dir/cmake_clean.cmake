file(REMOVE_RECURSE
  "CMakeFiles/example_adc_campaign.dir/adc_campaign.cpp.o"
  "CMakeFiles/example_adc_campaign.dir/adc_campaign.cpp.o.d"
  "example_adc_campaign"
  "example_adc_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adc_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
