# Empty dependencies file for example_adc_campaign.
# This may be replaced when dependencies are built.
