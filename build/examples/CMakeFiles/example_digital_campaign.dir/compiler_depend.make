# Empty compiler generated dependencies file for example_digital_campaign.
# This may be replaced when dependencies are built.
