file(REMOVE_RECURSE
  "CMakeFiles/example_digital_campaign.dir/digital_campaign.cpp.o"
  "CMakeFiles/example_digital_campaign.dir/digital_campaign.cpp.o.d"
  "example_digital_campaign"
  "example_digital_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_digital_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
