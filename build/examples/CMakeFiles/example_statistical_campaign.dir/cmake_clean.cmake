file(REMOVE_RECURSE
  "CMakeFiles/example_statistical_campaign.dir/statistical_campaign.cpp.o"
  "CMakeFiles/example_statistical_campaign.dir/statistical_campaign.cpp.o.d"
  "example_statistical_campaign"
  "example_statistical_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_statistical_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
