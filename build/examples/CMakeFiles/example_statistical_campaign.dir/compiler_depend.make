# Empty compiler generated dependencies file for example_statistical_campaign.
# This may be replaced when dependencies are built.
