# Empty dependencies file for example_pll_injection.
# This may be replaced when dependencies are built.
