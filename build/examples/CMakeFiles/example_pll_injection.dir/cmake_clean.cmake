file(REMOVE_RECURSE
  "CMakeFiles/example_pll_injection.dir/pll_injection.cpp.o"
  "CMakeFiles/example_pll_injection.dir/pll_injection.cpp.o.d"
  "example_pll_injection"
  "example_pll_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pll_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
