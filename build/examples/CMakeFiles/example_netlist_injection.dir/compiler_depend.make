# Empty compiler generated dependencies file for example_netlist_injection.
# This may be replaced when dependencies are built.
