file(REMOVE_RECURSE
  "CMakeFiles/example_netlist_injection.dir/netlist_injection.cpp.o"
  "CMakeFiles/example_netlist_injection.dir/netlist_injection.cpp.o.d"
  "example_netlist_injection"
  "example_netlist_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_netlist_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
