file(REMOVE_RECURSE
  "CMakeFiles/fig5_pll_lock.dir/fig5_pll_lock.cpp.o"
  "CMakeFiles/fig5_pll_lock.dir/fig5_pll_lock.cpp.o.d"
  "fig5_pll_lock"
  "fig5_pll_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pll_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
