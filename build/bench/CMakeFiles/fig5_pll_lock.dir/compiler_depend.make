# Empty compiler generated dependencies file for fig5_pll_lock.
# This may be replaced when dependencies are built.
