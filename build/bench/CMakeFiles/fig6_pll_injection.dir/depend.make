# Empty dependencies file for fig6_pll_injection.
# This may be replaced when dependencies are built.
