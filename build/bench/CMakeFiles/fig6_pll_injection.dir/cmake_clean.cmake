file(REMOVE_RECURSE
  "CMakeFiles/fig6_pll_injection.dir/fig6_pll_injection.cpp.o"
  "CMakeFiles/fig6_pll_injection.dir/fig6_pll_injection.cpp.o.d"
  "fig6_pll_injection"
  "fig6_pll_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pll_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
