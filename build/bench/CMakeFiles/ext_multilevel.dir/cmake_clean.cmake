file(REMOVE_RECURSE
  "CMakeFiles/ext_multilevel.dir/ext_multilevel.cpp.o"
  "CMakeFiles/ext_multilevel.dir/ext_multilevel.cpp.o.d"
  "ext_multilevel"
  "ext_multilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
