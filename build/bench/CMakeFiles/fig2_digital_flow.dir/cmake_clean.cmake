file(REMOVE_RECURSE
  "CMakeFiles/fig2_digital_flow.dir/fig2_digital_flow.cpp.o"
  "CMakeFiles/fig2_digital_flow.dir/fig2_digital_flow.cpp.o.d"
  "fig2_digital_flow"
  "fig2_digital_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_digital_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
