# Empty dependencies file for fig2_digital_flow.
# This may be replaced when dependencies are built.
