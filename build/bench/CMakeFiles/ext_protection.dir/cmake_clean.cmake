file(REMOVE_RECURSE
  "CMakeFiles/ext_protection.dir/ext_protection.cpp.o"
  "CMakeFiles/ext_protection.dir/ext_protection.cpp.o.d"
  "ext_protection"
  "ext_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
