# Empty dependencies file for ext_protection.
# This may be replaced when dependencies are built.
