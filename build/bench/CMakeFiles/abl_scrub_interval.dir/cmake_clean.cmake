file(REMOVE_RECURSE
  "CMakeFiles/abl_scrub_interval.dir/abl_scrub_interval.cpp.o"
  "CMakeFiles/abl_scrub_interval.dir/abl_scrub_interval.cpp.o.d"
  "abl_scrub_interval"
  "abl_scrub_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scrub_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
