# Empty compiler generated dependencies file for abl_scrub_interval.
# This may be replaced when dependencies are built.
