# Empty compiler generated dependencies file for abl_injection_time.
# This may be replaced when dependencies are built.
