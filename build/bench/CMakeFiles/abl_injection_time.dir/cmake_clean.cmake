file(REMOVE_RECURSE
  "CMakeFiles/abl_injection_time.dir/abl_injection_time.cpp.o"
  "CMakeFiles/abl_injection_time.dir/abl_injection_time.cpp.o.d"
  "abl_injection_time"
  "abl_injection_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_injection_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
