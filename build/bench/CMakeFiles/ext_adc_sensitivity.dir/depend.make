# Empty dependencies file for ext_adc_sensitivity.
# This may be replaced when dependencies are built.
