file(REMOVE_RECURSE
  "CMakeFiles/ext_adc_sensitivity.dir/ext_adc_sensitivity.cpp.o"
  "CMakeFiles/ext_adc_sensitivity.dir/ext_adc_sensitivity.cpp.o.d"
  "ext_adc_sensitivity"
  "ext_adc_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_adc_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
