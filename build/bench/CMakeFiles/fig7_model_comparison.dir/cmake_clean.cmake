file(REMOVE_RECURSE
  "CMakeFiles/fig7_model_comparison.dir/fig7_model_comparison.cpp.o"
  "CMakeFiles/fig7_model_comparison.dir/fig7_model_comparison.cpp.o.d"
  "fig7_model_comparison"
  "fig7_model_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_model_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
