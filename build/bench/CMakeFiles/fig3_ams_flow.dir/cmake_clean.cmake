file(REMOVE_RECURSE
  "CMakeFiles/fig3_ams_flow.dir/fig3_ams_flow.cpp.o"
  "CMakeFiles/fig3_ams_flow.dir/fig3_ams_flow.cpp.o.d"
  "fig3_ams_flow"
  "fig3_ams_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ams_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
