# Empty dependencies file for ext_processor.
# This may be replaced when dependencies are built.
