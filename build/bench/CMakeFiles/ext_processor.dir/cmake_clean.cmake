file(REMOVE_RECURSE
  "CMakeFiles/ext_processor.dir/ext_processor.cpp.o"
  "CMakeFiles/ext_processor.dir/ext_processor.cpp.o.d"
  "ext_processor"
  "ext_processor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_processor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
