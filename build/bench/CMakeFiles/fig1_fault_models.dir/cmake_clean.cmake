file(REMOVE_RECURSE
  "CMakeFiles/fig1_fault_models.dir/fig1_fault_models.cpp.o"
  "CMakeFiles/fig1_fault_models.dir/fig1_fault_models.cpp.o.d"
  "fig1_fault_models"
  "fig1_fault_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_fault_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
