# Empty compiler generated dependencies file for fig1_fault_models.
# This may be replaced when dependencies are built.
