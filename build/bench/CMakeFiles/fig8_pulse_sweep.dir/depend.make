# Empty dependencies file for fig8_pulse_sweep.
# This may be replaced when dependencies are built.
