file(REMOVE_RECURSE
  "CMakeFiles/abl_tolerance.dir/abl_tolerance.cpp.o"
  "CMakeFiles/abl_tolerance.dir/abl_tolerance.cpp.o.d"
  "abl_tolerance"
  "abl_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
