# Empty dependencies file for abl_tolerance.
# This may be replaced when dependencies are built.
